//! `VbiQueue` — an io_uring-style submission/completion front end.
//!
//! The paper's MTL is an *asynchronous* hardware agent (§4): a core hands
//! translation-and-access work to the memory controller and continues
//! executing, with the result delivered off the critical path. [`VbiQueue`]
//! gives the sharded [`VbiService`] that shape in
//! software:
//!
//! * clients **submit** tagged operations ([`Sqe`]) without blocking on
//!   shard locks — submission routes the op to its home shard's MPSC ring
//!   (a stat-free CVT peek resolves the VBUID, served lock-free from the
//!   client's seqlock-published CVT cache when it hits) and returns
//!   immediately;
//! * one **worker thread per shard** drains its ring in FIFO order and
//!   executes each op through the shared engine
//!   ([`vbi_core::ops::execute`]) — the same code path the synchronous and
//!   batched front ends use, so queued execution has identical semantics;
//! * finished ops are posted to a shared **completion queue** as tagged
//!   [`Cqe`]s, which any thread may **reap**, in completion order — out of
//!   order with respect to submission across shards, exactly like
//!   independent MTLs serving independent traffic.
//!
//! ## Ordering
//!
//! Ops that target the same VB land on the same ring (routing is a pure
//! function of the VBUID) and therefore execute in submission order.
//! Across VBs on different shards there is no ordering guarantee, and an
//! op that *depends* on another's completion (e.g. a store through a CVT
//! index returned by a queued `RequestVb`) must wait for its completion to
//! be reaped first — the io_uring contract.
//!
//! Every completion is delivered exactly once: nothing is dropped on the
//! floor even when submitters race workers (see `queue_loses_no_completions`
//! in the workspace stress suite). Dropping the queue closes the rings, lets the
//! workers drain what was already submitted, and joins them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use vbi_core::error::{Result, VbiError};
use vbi_core::ops::{Op, OpResult};

use crate::sync::unpoison;
use crate::{ServiceConfig, ServiceSession, VbiService};

/// Tag bit reserved for the async front end
/// ([`crate::async_session::AsyncFront`]): completions whose tag carries it
/// are dispatched to the installed [`CompletionHook`] (waking the awaiting
/// future) instead of being posted to the shared completion queue. Callers
/// reaping by hand should not mint tags with this bit set.
pub(crate) const ASYNC_TAG_BIT: u64 = 1 << 63;

/// Where async completions go: installed once by the async front end, then
/// invoked by every shard worker for tags carrying [`ASYNC_TAG_BIT`]. The
/// hook runs on the worker thread, so implementations must be short — take
/// a waker out of a registry and wake it, nothing more.
pub(crate) trait CompletionHook: Send + Sync + std::fmt::Debug {
    fn complete(&self, tag: u64, result: OpResult);
}

/// A submission-queue entry: one operation plus the caller's tag, echoed
/// verbatim on the completion so pipelined requests can be told apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sqe {
    /// Caller-chosen correlation tag.
    pub tag: u64,
    /// The operation to execute.
    pub op: Op,
}

/// A completion-queue entry: the tag of the finished [`Sqe`] and the
/// outcome the engine produced for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cqe {
    /// The tag of the submission this completes.
    pub tag: u64,
    /// The operation's outcome.
    pub result: OpResult,
}

/// A point-in-time view of the queue's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDepth {
    /// SQEs sitting in submission rings, not yet picked up by a worker.
    pub queued: usize,
    /// Ops submitted whose completions have not been posted yet (queued,
    /// plus in execution).
    pub in_flight: u64,
    /// High-water mark of `queued` over the queue's lifetime.
    pub high_water: usize,
}

/// One shard's MPSC submission ring: submitters push, the shard's worker
/// pops in FIFO order.
#[derive(Debug, Default)]
struct Ring {
    state: Mutex<RingState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct RingState {
    entries: VecDeque<Sqe>,
    closed: bool,
}

impl Ring {
    fn push(&self, sqe: Sqe) {
        let mut state = unpoison(self.state.lock());
        state.entries.push_back(sqe);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next entry; `None` once the ring is closed *and*
    /// drained, so shutdown never abandons accepted work.
    fn pop(&self) -> Option<Sqe> {
        let mut state = unpoison(self.state.lock());
        loop {
            if let Some(sqe) = state.entries.pop_front() {
                return Some(sqe);
            }
            if state.closed {
                return None;
            }
            state = unpoison(self.ready.wait(state));
        }
    }

    fn close(&self) {
        unpoison(self.state.lock()).closed = true;
        self.ready.notify_all();
    }
}

/// The shared completion queue plus the in-flight accounting that lets
/// reapers distinguish "nothing yet" from "nothing ever".
#[derive(Debug, Default)]
struct CompletionQueue {
    state: Mutex<CqState>,
    posted: Condvar,
}

#[derive(Debug, Default)]
struct CqState {
    ready: VecDeque<Cqe>,
    /// Submitted ops whose completion has not been posted yet.
    in_flight: u64,
    /// High-water mark of `in_flight` — how deep the synchronous pipeline
    /// actually got (async submissions are metered separately, outside
    /// this mutex — see `Shared::async_in_flight`).
    inflight_high_water: u64,
}

impl CompletionQueue {
    fn begin(&self) {
        let mut state = unpoison(self.state.lock());
        state.in_flight += 1;
        state.inflight_high_water = state.inflight_high_water.max(state.in_flight);
    }

    fn post(&self, cqe: Cqe) {
        let mut state = unpoison(self.state.lock());
        state.in_flight -= 1;
        state.ready.push_back(cqe);
        drop(state);
        // notify_all, not notify_one: with several blocked reapers, the one
        // woken here may consume the entry while another still needs to
        // observe `in_flight == 0` to return `None` instead of waiting for
        // a wakeup that will never come.
        self.posted.notify_all();
    }

    fn try_reap(&self) -> Option<Cqe> {
        unpoison(self.state.lock()).ready.pop_front()
    }

    /// Blocks until a completion is available; `None` when nothing is in
    /// flight and the queue is empty (reaping more would wait forever).
    fn reap(&self) -> Option<Cqe> {
        let mut state = unpoison(self.state.lock());
        loop {
            if let Some(cqe) = state.ready.pop_front() {
                return Some(cqe);
            }
            if state.in_flight == 0 {
                return None;
            }
            state = unpoison(self.posted.wait(state));
        }
    }

    fn in_flight(&self) -> u64 {
        unpoison(self.state.lock()).in_flight
    }

    fn inflight_high_water(&self) -> u64 {
        unpoison(self.state.lock()).inflight_high_water
    }
}

#[derive(Debug)]
struct Shared {
    rings: Vec<Ring>,
    cq: CompletionQueue,
    /// SQEs currently queued across all rings (not yet popped).
    queued: AtomicUsize,
    /// High-water mark of `queued`.
    high_water: AtomicUsize,
    /// Completions posted over the queue's lifetime.
    completed: AtomicU64,
    /// In-flight async (hook-dispatched) ops, metered outside the CQ
    /// mutex: their completions never enter the shared completion queue,
    /// so their accounting must not serialize on it either — with the
    /// rings per-shard and the registry striped, this keeps the async hot
    /// path free of *any* shared lock. Reapers ignore them by
    /// construction (nothing will ever be posted for these tags).
    async_in_flight: AtomicU64,
    /// High-water mark of `async_in_flight`.
    async_inflight_high_water: AtomicU64,
    /// Async submissions that parked waiting for an in-flight budget slot
    /// (bumped by the async front end's backpressure gate).
    backpressure_waits: AtomicU64,
    /// Async completion dispatch, installed at most once (see
    /// [`CompletionHook`]).
    hook: std::sync::OnceLock<Arc<dyn CompletionHook>>,
}

/// The io_uring-style front end over a [`VbiService`]. See the [module
/// docs](self) for the model.
#[derive(Debug)]
pub struct VbiQueue {
    service: VbiService,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Round-robin cursor for ops with no deterministic home shard.
    rr: AtomicUsize,
}

impl VbiQueue {
    /// Builds a service from `config` and the queue over it: one
    /// submission ring and one worker thread per shard.
    pub fn new(config: ServiceConfig) -> Self {
        Self::over(VbiService::new(config))
    }

    /// Builds the queue over an existing service (the service handle stays
    /// usable for synchronous calls alongside the queue).
    pub fn over(service: VbiService) -> Self {
        let shards = service.shards();
        let shared = Arc::new(Shared {
            rings: (0..shards).map(|_| Ring::default()).collect(),
            cq: CompletionQueue::default(),
            queued: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            async_in_flight: AtomicU64::new(0),
            async_inflight_high_water: AtomicU64::new(0),
            backpressure_waits: AtomicU64::new(0),
            hook: std::sync::OnceLock::new(),
        });
        let workers = (0..shards)
            .map(|ring| {
                let shared = Arc::clone(&shared);
                let service = service.clone();
                std::thread::spawn(move || worker_loop(ring, &service, &shared))
            })
            .collect();
        Self { service, shared, workers, rr: AtomicUsize::new(0) }
    }

    /// The service behind the queue (for synchronous setup calls and
    /// statistics).
    pub fn service(&self) -> &VbiService {
        &self.service
    }

    /// Registers a new memory client and returns its session — the
    /// synchronous per-client surface alongside the queue. Tagged
    /// submissions for the client build their [`Op`]s with
    /// [`ClientSession::id`](vbi_core::session::ClientSession::id).
    ///
    /// # Errors
    ///
    /// Returns `VbiError::OutOfClients`
    /// when all 2^16 IDs are live.
    pub fn create_client(&self) -> Result<ServiceSession> {
        self.service.create_client()
    }

    /// Submits one tagged operation and returns immediately; the outcome
    /// arrives as a [`Cqe`] carrying `tag`. Never blocks on a shard lock —
    /// routing costs at most a client-state peek.
    pub fn submit(&self, tag: u64, op: Op) {
        let ring = self.route(&op);
        if tag & ASYNC_TAG_BIT != 0 && self.shared.hook.get().is_some() {
            let depth = self.shared.async_in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.shared.async_inflight_high_water.fetch_max(depth, Ordering::Relaxed);
        } else {
            self.shared.cq.begin();
        }
        let depth = self.shared.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.high_water.fetch_max(depth, Ordering::Relaxed);
        self.shared.rings[ring].push(Sqe { tag, op });
    }

    /// Submits a batch of entries (in order; same routing as
    /// [`VbiQueue::submit`]).
    pub fn submit_all<I: IntoIterator<Item = Sqe>>(&self, sqes: I) {
        for sqe in sqes {
            self.submit(sqe.tag, sqe.op);
        }
    }

    /// Picks the submission ring for an op: the home shard of the VB it
    /// touches when that is determined (same VB → same ring → FIFO
    /// execution), round-robin otherwise.
    fn route(&self, op: &Op) -> usize {
        let shards = self.shared.rings.len();
        if shards == 1 {
            return 0;
        }
        // Remaps route to the *source* shard's worker; the worker engages
        // the destination shard through the engine's ordered two-MTL
        // capability.
        if let Some((client, index)) = op.remap_source() {
            if let Some(vbuid) = self.service.peek_vbuid(client, index) {
                return self.service.shard_of(vbuid);
            }
        }
        match op {
            Op::Attach { vbuid, .. } | Op::AttachAt { vbuid, .. } | Op::Detach { vbuid, .. } => {
                return self.service.shard_of(*vbuid);
            }
            Op::ReleaseVb { client, index } => {
                if let Some(vbuid) = self.service.peek_vbuid(*client, *index) {
                    return self.service.shard_of(vbuid);
                }
            }
            _ => {
                if let Some((client, va, _)) = op.checked_access() {
                    if let Some(vbuid) = self.service.peek_vbuid(client, va.cvt_index()) {
                        return self.service.shard_of(vbuid);
                    }
                }
            }
        }
        self.rr.fetch_add(1, Ordering::Relaxed) % shards
    }

    /// Reaps one completion without blocking.
    pub fn try_reap(&self) -> Option<Cqe> {
        self.shared.cq.try_reap()
    }

    /// Reaps one completion, blocking while ops are in flight. Returns
    /// `None` when the queue is idle (nothing in flight, nothing ready) —
    /// reaping more would wait forever.
    pub fn reap(&self) -> Option<Cqe> {
        self.shared.cq.reap()
    }

    /// Reaps every outstanding completion, blocking until the queue is
    /// idle.
    pub fn drain(&self) -> Vec<Cqe> {
        let mut out = Vec::new();
        while let Some(cqe) = self.reap() {
            out.push(cqe);
        }
        out
    }

    /// Ops submitted whose completions have not been *posted* yet
    /// (synchronous pipeline plus async ops not yet dispatched).
    pub fn in_flight(&self) -> u64 {
        self.shared.cq.in_flight() + self.shared.async_in_flight.load(Ordering::SeqCst)
    }

    /// Completions posted over the queue's lifetime (reaped or not),
    /// including async completions dispatched to futures.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// High-water mark of ops in flight at once (submitted, completion not
    /// yet posted or consumed) over the queue's lifetime. The synchronous
    /// and async pipelines are metered independently (the async side never
    /// touches the CQ mutex); this reports the deeper of the two.
    pub fn inflight_high_water(&self) -> u64 {
        self.shared
            .cq
            .inflight_high_water()
            .max(self.shared.async_inflight_high_water.load(Ordering::Relaxed))
    }

    /// Async submissions that parked waiting for an in-flight budget slot
    /// — nonzero means backpressure actually engaged.
    pub fn backpressure_waits(&self) -> u64 {
        self.shared.backpressure_waits.load(Ordering::Relaxed)
    }

    /// Counts one async submission that had to wait for budget.
    pub(crate) fn note_backpressure_wait(&self) {
        self.shared.backpressure_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Installs the async completion hook. At most one front end may own
    /// the async tag space of a queue.
    ///
    /// # Panics
    ///
    /// Panics if a hook is already installed.
    pub(crate) fn install_hook(&self, hook: Arc<dyn CompletionHook>) {
        assert!(
            self.shared.hook.set(hook).is_ok(),
            "async completion hook already installed: one AsyncFront per VbiQueue"
        );
    }

    /// A snapshot of the queue occupancy (ring depth, in-flight count,
    /// lifetime high-water mark).
    pub fn depth(&self) -> QueueDepth {
        QueueDepth {
            queued: self.shared.queued.load(Ordering::Relaxed),
            in_flight: self.in_flight(),
            high_water: self.shared.high_water.load(Ordering::Relaxed),
        }
    }

    /// The unified observability snapshot — the service's
    /// [`VbiService::snapshot`] plus this queue's occupancy counters, with
    /// `front_end` relabeled `"queue"`. The ops the workers execute all
    /// funnel through the shared engine, so the op histograms here *are*
    /// the queue's op histograms.
    pub fn snapshot(&self) -> vbi_core::telemetry::Snapshot {
        let depth = self.depth();
        let mut snapshot = self.service.snapshot();
        snapshot.front_end = "queue";
        snapshot.queue = Some(vbi_core::telemetry::QueueActivity {
            queued: depth.queued as u64,
            in_flight: depth.in_flight,
            high_water: depth.high_water as u64,
            completed: self.completed(),
            inflight_high_water: self.inflight_high_water(),
            backpressure_waits: self.backpressure_waits(),
        });
        snapshot
    }

    /// Closes the rings, lets the workers finish everything already
    /// submitted, joins them, and returns the unreaped completions.
    pub fn shutdown(mut self) -> Vec<Cqe> {
        self.finish();
        let mut out = Vec::new();
        while let Some(cqe) = self.shared.cq.try_reap() {
            out.push(cqe);
        }
        out
    }

    fn finish(&mut self) {
        for ring in &self.shared.rings {
            ring.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for VbiQueue {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One shard's worker: drain the ring in FIFO order, execute through the
/// shared engine, post tagged completions.
///
/// A panic inside the engine (an internal MTL invariant tripping) must not
/// kill the worker: that would strand the op's `in_flight` count and hang
/// every blocked reaper forever, silently. It is caught and posted as a
/// [`VbiError::EngineFault`] completion instead — consistent with the rest
/// of the crate, which unpoisons locks and keeps serving after a panicking
/// holder.
fn worker_loop(ring: usize, service: &VbiService, shared: &Shared) {
    while let Some(Sqe { tag, op }) = shared.rings[ring].pop() {
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.execute(op)))
            .unwrap_or_else(|panic| {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(VbiError::EngineFault(message))
            });
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // Async completions bypass the shared CQ entirely: the hook wakes
        // the awaiting future directly, and the in-flight count retires on
        // its own atomic — no entry accumulates for a reaper that will
        // never come, and no shared mutex sits on the dispatch path.
        match shared.hook.get() {
            Some(hook) if tag & ASYNC_TAG_BIT != 0 => {
                shared.async_in_flight.fetch_sub(1, Ordering::SeqCst);
                hook.complete(tag, result);
            }
            _ => shared.cq.post(Cqe { tag, result }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbi_core::client::{ClientId, VirtualAddress};
    use vbi_core::ops::OpOutput;
    use vbi_core::perm::Rwx;
    use vbi_core::vb::VbProperties;
    use vbi_core::VbiConfig;

    fn queue(shards: usize) -> VbiQueue {
        VbiQueue::new(ServiceConfig::new(
            shards,
            VbiConfig { phys_frames: 8192, ..VbiConfig::vbi_full() },
        ))
    }

    #[test]
    fn pipelined_ops_complete_with_their_tags() {
        let q = queue(4);
        let session = q.create_client().unwrap();
        let c = session.id();
        let vb = session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for i in 0..32u64 {
            q.submit(i, Op::StoreU64 { client: c, va: vb.at(i * 8), value: i * 3 });
        }
        let stores = q.drain();
        assert_eq!(stores.len(), 32);
        for cqe in &stores {
            assert_eq!(cqe.result, Ok(OpOutput::Unit));
        }
        for i in 0..32u64 {
            q.submit(100 + i, Op::LoadU64 { client: c, va: vb.at(i * 8) });
        }
        let mut loads = q.drain();
        assert_eq!(loads.len(), 32);
        loads.sort_by_key(|cqe| cqe.tag);
        for (i, cqe) in loads.iter().enumerate() {
            assert_eq!(cqe.tag, 100 + i as u64);
            assert_eq!(cqe.result, Ok(OpOutput::U64(i as u64 * 3)));
        }
    }

    #[test]
    fn same_vb_ops_execute_in_submission_order() {
        let q = queue(4);
        let session = q.create_client().unwrap();
        let c = session.id();
        let vb = session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        // A store burst to one cell: the last submitted value must win.
        for i in 0..100u64 {
            q.submit(i, Op::StoreU64 { client: c, va: vb.at(0), value: i });
        }
        q.submit(1000, Op::LoadU64 { client: c, va: vb.at(0) });
        let mut final_load = None;
        while let Some(cqe) = q.reap() {
            if cqe.tag == 1000 {
                final_load = Some(cqe.result);
            }
        }
        assert_eq!(final_load, Some(Ok(OpOutput::U64(99))));
    }

    #[test]
    fn control_plane_ops_flow_through_the_queue() {
        let q = queue(2);
        q.submit(1, Op::CreateClient);
        let cqe = q.reap().expect("completion arrives");
        assert_eq!(cqe.tag, 1);
        let client = cqe.result.unwrap().as_client().unwrap();
        q.submit(
            2,
            Op::RequestVb {
                client,
                bytes: 4096,
                props: VbProperties::NONE,
                perms: Rwx::READ_WRITE,
            },
        );
        let handle = q.reap().unwrap().result.unwrap().as_handle().unwrap();
        q.submit(3, Op::StoreU64 { client, va: handle.at(0), value: 7 });
        q.submit(4, Op::LoadU64 { client, va: handle.at(0) });
        let mut results: Vec<Cqe> = q.drain();
        results.sort_by_key(|c| c.tag);
        assert_eq!(results[1].result, Ok(OpOutput::U64(7)));
        q.submit(5, Op::DestroyClient { client });
        assert!(q.reap().unwrap().result.is_ok());
        assert!(!q.service().client_exists(client));
    }

    #[test]
    fn remap_ops_complete_through_the_queue() {
        let q = queue(4);
        let session = q.create_client().unwrap();
        let c = session.id();
        let vb = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        session.store_u64(vb.at(8), 2020).unwrap();
        let to = (q.service().shard_of(vb.vbuid) + 1) % q.service().shards();
        // Same source VB → same ring → FIFO: the migrate lands before the
        // dependent load and promote.
        q.submit(1, Op::Migrate { client: c, index: vb.cvt_index, to_shard: to });
        q.submit(2, Op::LoadU64 { client: c, va: vb.at(8) });
        q.submit(3, Op::Promote { client: c, index: vb.cvt_index });
        let mut cqes = q.drain();
        cqes.sort_by_key(|cqe| cqe.tag);
        let moved = cqes[0].result.as_ref().unwrap().as_handle().unwrap();
        assert_eq!(q.service().shard_of(moved.vbuid), to);
        assert_eq!(cqes[1].result, Ok(OpOutput::U64(2020)));
        let promoted = cqes[2].result.as_ref().unwrap().as_handle().unwrap();
        assert_eq!(promoted.cvt_index, vb.cvt_index);
        assert_eq!(session.load_u64(vb.at(8)).unwrap(), 2020);
        assert_eq!(q.service().stats().vbs_migrated, 1);
    }

    #[test]
    fn errors_are_completions_not_panics() {
        let q = queue(2);
        let c = q.create_client().unwrap().id();
        q.submit(9, Op::LoadU64 { client: c, va: VirtualAddress::new(42, 0) });
        q.submit(10, Op::DestroyClient { client: ClientId(999) });
        let mut cqes = q.drain();
        cqes.sort_by_key(|c| c.tag);
        assert!(cqes[0].result.is_err());
        assert!(cqes[1].result.is_err());
    }

    #[test]
    fn idle_reap_returns_none_and_shutdown_returns_unreaped() {
        let q = queue(1);
        assert!(q.reap().is_none(), "idle queue must not block");
        let session = q.create_client().unwrap();
        let c = session.id();
        let vb = session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        q.submit(1, Op::StoreU64 { client: c, va: vb.at(0), value: 1 });
        q.submit(2, Op::LoadU64 { client: c, va: vb.at(0) });
        let leftovers = q.shutdown();
        assert_eq!(leftovers.len(), 2, "accepted work completes before shutdown");
    }

    #[test]
    fn depth_reports_high_water() {
        let q = queue(2);
        let session = q.create_client().unwrap();
        let c = session.id();
        let vb = session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for i in 0..64u64 {
            q.submit(i, Op::StoreU64 { client: c, va: vb.at(i * 8), value: i });
        }
        q.drain();
        let depth = q.depth();
        assert_eq!(depth.queued, 0);
        assert_eq!(depth.in_flight, 0);
        assert!(depth.high_water >= 1, "at least one SQE was queued at once");
        assert_eq!(q.completed(), 64);
    }
}
