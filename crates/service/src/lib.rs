//! # vbi-service — a concurrent, sharded VBI memory service
//!
//! The paper's MTL is a hardware agent that serves translation and
//! allocation requests from many concurrent clients, and §6.2 sketches how
//! a machine scales it out: one MTL per node, with VBs of every size class
//! partitioned among the MTLs by the high-order bits of the VBID. This
//! crate turns the single-owner [`vbi_core::System`] into that shape in
//! software: a [`VbiService`] handle that is `Send + Sync + Clone`, backed
//! by
//!
//! * **N MTL shards** ([`Mtl::for_shard`]), each a `Mutex<Mtl>` owning a
//!   disjoint slice of the VBID space and its own physical frames — a
//!   VBI address names its home shard deterministically, so independent
//!   VBs never contend on a lock;
//! * **seqlock client state, behind a seqlock client map**: each client's
//!   CVT sits behind a mutex, but its CVT cache is *published* through an
//!   epoch-validated [`vbi_core::cvt_cache::SeqCvtCache`] — and the
//!   `ClientId -> slot` map itself is sharded with per-shard
//!   generation-validated published tables (the `client_map` module), so the
//!   common-case read — a protection check that hits the CVT cache —
//!   takes **zero** shared-lock acquisitions end to end: no map lock, no
//!   client lock, no shard lock (the paper's central claim: cached
//!   translations need no MTL or OS involvement). Control-plane ops take
//!   the mutexes and bump the epochs; readers that observe a torn epoch
//!   retry or fall back to the locked path;
//! * **sessions**: [`VbiService::create_client`] returns a
//!   [`ClientSession`] that owns the client's whole API surface
//!   (`session.load_u64(va)`, `session.request_vb(..)`), shareable across
//!   any number of reader threads;
//! * a **batched request path** ([`VbiService::submit`]) over the full
//!   [`Op`] surface that performs protection checks first and visits each
//!   shard once per run of data-plane ops, amortizing lock traffic;
//! * the **VB-remap family behind the service API**: `Op::Promote`,
//!   `Op::CloneVb`, and cross-shard `Op::Migrate` (§4.2.2/§6.2) execute
//!   through the shared engine, taking the source and destination shard
//!   locks in index order and bumping each affected client's seqlock
//!   epoch, so lock-free readers never observe a torn mid-migration
//!   entry;
//! * an **asynchronous front end** ([`VbiQueue`], in [`queue`]): per-shard
//!   worker threads drain submission rings and post tagged completions, so
//!   clients pipeline requests without blocking on shard locks;
//! * a **waker-driven async surface** ([`AsyncSession`], in
//!   [`async_session`]): `async fn` verbs over the queue whose completions
//!   wake parked futures directly (no polling reaper), with per-session
//!   in-flight budgets for backpressure and a std-only executor — tens of
//!   thousands of concurrent logical clients on a handful of OS threads.
//!
//! Every request executes through the one op engine in [`vbi_core::ops`] —
//! the service holds **no** permission, CVT-cache, or stat logic of its
//! own. It only decides *where state lives* (which shard, which lock) by
//! implementing [`vbi_core::ops::OpEnv`]. A one-shard service driven by
//! one thread is therefore *observably identical* to `System` by
//! construction: the same ops produce the same responses and
//! [`MtlStats`] (proven property-based over random mixed op sequences in
//! `tests/service_equivalence.rs` at the workspace root).
//!
//! ## Locking protocol
//!
//! The shared-lock surface is four lock families — map-shard, client-state,
//! MTL-shard, and the arena-index allocator — every one acquired through
//! the counted path in the `sync` module, so
//! [`thread_shared_lock_acquisitions`]
//! is a complete per-thread census of it.
//!
//! **The read path takes none of them.** A read-kind protection check
//! resolves its client through the map shard's published table and probes
//! the published CVT cache *inside one generation window*, validated
//! after the fact (`client_map`): a stable window is proof the client was
//! live with exactly that cached translation, so slot recycling and
//! destroy races are invisible. A moved generation means churn on the
//! same map shard — the reader retries the window (a few atomic loads)
//! rather than taking a lock; only a *stable* miss (cold cache,
//! invalidated slot, unpublished client) falls back to the locked path.
//! The stress suite asserts the census delta over a run of CVT-cache-hit
//! reads under create/destroy churn is **exactly zero**.
//!
//! Lock order for everyone else:
//!
//! * map-shard → {allocator, client-state}: create claims and
//!   reinitializes its slot while holding the map-shard mutex; destroy
//!   removes under the map-shard mutex and locks the slot after release.
//!   No path acquires a map lock while holding a client or shard lock.
//! * client-state → MTL-shard: no path acquires a client lock while
//!   holding a shard lock (the engine's [`OpEnv`] contract — each state
//!   callback is entered and exited before the next).
//! * The one path holding two MTL-shard locks is the VB-remap family's
//!   `OpEnv::with_mtl_pair` (a migration's source + destination), always
//!   in shard-index order; the frame-borrowing fallback
//!   (`OpEnv::borrow_frames`) instead takes donor and adoptee locks one
//!   at a time, never together.
//!
//! That makes deadlock impossible by construction. Every family counts
//! acquisitions and contention (map traffic in
//! [`VbiService::client_map_stats`], shard traffic in
//! [`VbiService::contention`], client traffic in
//! [`VbiService::client_lock_acquisitions`]); mutation paths that resolve
//! a slot lock-free re-verify ownership under the slot lock before
//! touching state, since slots are recycled across clients.
//!
//! ## Example
//!
//! ```
//! use vbi_service::{ServiceConfig, VbiService};
//! use vbi_core::{VbiConfig, VbProperties, Rwx};
//! use std::thread;
//!
//! # fn main() -> Result<(), vbi_core::VbiError> {
//! let service = VbiService::new(ServiceConfig::new(4, VbiConfig::vbi_full()));
//! let owner = service.create_client()?;
//! let vb = owner.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)?;
//! owner.store_u64(vb.at(8), 7)?;
//! thread::scope(|s| {
//!     for _ in 0..4 {
//!         let reader = owner.clone(); // many readers, one client
//!         s.spawn(move || {
//!             assert_eq!(reader.load_u64(vb.at(8)).unwrap(), 7);
//!         });
//!     }
//! });
//! assert!(owner.cvt_cache_stats()?.lockfree_hits > 0);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use vbi_core::addr::{SizeClass, VbiAddress, Vbuid};
use vbi_core::client::{ClientId, ClientIdAllocator, Cvt, CvtEntry};
use vbi_core::config::VbiConfig;
use vbi_core::cvt_cache::{ClientCvtCache, CvtCacheStats};
use vbi_core::error::{Result, VbiError};
use vbi_core::mtl::{Mtl, MtlAccess};
use vbi_core::ops::{self, Op, OpEnv, OpResult};
use vbi_core::session::{ClientSession, SessionHost};
use vbi_core::stats::MtlStats;
use vbi_core::telemetry::{OpKind, OpSample, Snapshot, Telemetry, TraceEvent};
use vbi_core::tlb::TlbStats;
use vbi_core::vb::VbProperties;

pub mod async_session;
mod client_map;
pub mod queue;
mod sync;

use crate::client_map::{ClientMap, ClientState};
use crate::sync::{lock_counted, unpoison};

pub use async_session::{block_on, AsyncFront, AsyncSession, Executor, DEFAULT_SESSION_BUDGET};
pub use queue::{Cqe, QueueDepth, Sqe, VbiQueue};
pub use sync::thread_shared_lock_acquisitions;
// Re-exported so `ServiceConfig::with_backing` factories can be written
// against this crate alone.
pub use vbi_core::swap::{BackingStore, PressureBackend};

/// A session over the sharded service — the client-facing API surface.
pub type ServiceSession = ClientSession<VbiService>;

/// Configuration of a sharded service: the shard count plus the base
/// machine configuration.
///
/// `base.phys_frames` is the *total* physical memory of the machine; it is
/// split evenly across the shards (each shard's MTL owns its own frames,
/// like the per-node memories of §6.2).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of MTL shards: a power of two in `[1, 256]`.
    pub shards: usize,
    /// Machine configuration; `phys_frames` is the machine total.
    pub base: VbiConfig,
    /// Whether read-kind protection checks may be answered lock-free from
    /// the seqlock-published CVT cache (default `true`). `false` forces
    /// every check through the locked path — the baseline the `read_path`
    /// bench compares against. Client resolution always goes through the
    /// epoch-validated published tables of the sharded client map, so with
    /// this on, a CVT-cache-hit read acquires **zero** shared locks end to
    /// end.
    pub lockfree_reads: bool,
    /// Factory for each shard's backing store, run once per shard at
    /// construction (default `None` = the in-memory
    /// [`vbi_core::swap::BackingStore`]). A plain `fn` pointer keeps the
    /// config `Clone` + `Debug`; use it to install a slow-tier model like
    /// `vbi_hetero::SlowTierBackend` behind every shard.
    pub backing: Option<fn() -> Box<dyn PressureBackend>>,
}

impl ServiceConfig {
    /// A `shards`-way service over `base`.
    pub fn new(shards: usize, base: VbiConfig) -> Self {
        Self { shards, base, lockfree_reads: true, backing: None }
    }

    /// The degenerate single-shard service — byte- and stats-identical to
    /// a [`vbi_core::System`] under single-threaded driving.
    pub fn single(base: VbiConfig) -> Self {
        Self::new(1, base)
    }

    /// Selects whether the lock-free read path is used (see
    /// [`ServiceConfig::lockfree_reads`]).
    pub fn with_lockfree_reads(mut self, enabled: bool) -> Self {
        self.lockfree_reads = enabled;
        self
    }

    /// Installs a per-shard backing-store factory (see
    /// [`ServiceConfig::backing`]).
    pub fn with_backing(mut self, factory: fn() -> Box<dyn PressureBackend>) -> Self {
        self.backing = Some(factory);
        self
    }
}

/// Lock and work traffic observed on one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard-lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Engine ops whose MTL work ran on this shard (a cross-shard remap
    /// counts on both its shards; batched data ops count on their home
    /// shard). The denominator that lets contention be compared *per op*
    /// across shards with different traffic.
    pub ops_executed: u64,
}

impl ShardLoad {
    /// Fraction of acquisitions that blocked (0.0 for an idle shard).
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Blocked acquisitions per op executed on the shard (0.0 for an idle
    /// shard) — the load-normalized contention signal a rebalancer wants:
    /// a shard doing 10x the ops is allowed 10x the blocking before it
    /// looks worse than its neighbors.
    pub fn contended_per_op(&self) -> f64 {
        if self.ops_executed == 0 {
            0.0
        } else {
            self.contended as f64 / self.ops_executed as f64
        }
    }
}

/// One MTL shard plus its lock- and work-traffic counters.
#[derive(Debug)]
struct Shard {
    mtl: Mutex<Mtl>,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    /// Engine ops whose MTL work ran here (see [`ShardLoad::ops_executed`]).
    ops: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    config: ServiceConfig,
    shards: Vec<Shard>,
    /// The sharded, epoch-validated client map (see [`client_map`]) — the
    /// structure that lets a CVT-cache-hit read resolve its client with
    /// zero shared-lock acquisitions.
    clients: ClientMap,
    ids: Mutex<ClientIdAllocator>,
    /// Round-robin cursor for placing newly requested VBs on shards.
    placement: AtomicUsize,
    /// Frames of physical capacity moved between shards by the borrow
    /// path ([`VbiService::frames_borrowed`]).
    frames_borrowed: AtomicU64,
    /// The telemetry plane the engine records into (one stripe per shard).
    telemetry: Arc<Telemetry>,
}

/// A concurrent, sharded VBI memory service.
///
/// The handle is cheap to clone (`Arc` inside) and `Send + Sync`; clone it
/// into every worker thread, or hand threads clones of a
/// [`ClientSession`]. See the [crate-level docs](crate) for the design and
/// an example.
#[derive(Debug, Clone)]
pub struct VbiService {
    inner: Arc<Inner>,
}

// The whole point of the crate; if an inner type loses Send/Sync this
// fails to compile here rather than in downstream user code.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VbiService>();
    assert_send_sync::<ServiceSession>();
};

/// The service's [`OpEnv`]: the engine runs against lock-protected state.
///
/// A zero-cost view over a `&VbiService`; the `&mut self` receivers the
/// trait requires are satisfied by the wrapper while all mutation goes
/// through the service's locks.
struct ServiceEnv<'a>(&'a VbiService);

impl OpEnv for ServiceEnv<'_> {
    fn config(&self) -> &VbiConfig {
        &self.0.inner.config.base
    }

    fn alloc_client_id(&mut self) -> Result<ClientId> {
        unpoison(self.0.inner.ids.lock()).allocate()
    }

    fn release_client_id(&mut self, id: ClientId) {
        unpoison(self.0.inner.ids.lock()).release(id);
    }

    fn try_insert_client(&mut self, id: ClientId, cvt: Cvt) -> bool {
        self.0.inner.clients.insert(id, cvt)
    }

    fn take_client_vbuids(&mut self, id: ClientId) -> Result<Vec<Vbuid>> {
        let (index, slot) = self.0.inner.clients.remove(id)?;
        let vbuids = {
            let st = slot.lock();
            st.cvt.iter().map(|(_, entry)| entry.vbuid()).collect()
        };
        // Only now may the slot be re-claimed: recycling before the CVT
        // read could hand the arena index to a racing create.
        self.0.inner.clients.recycle(index);
        Ok(vbuids)
    }

    fn with_client<R>(
        &mut self,
        id: ClientId,
        f: impl FnOnce(&mut Cvt, &mut dyn vbi_core::cvt_cache::ClientCvtCache) -> R,
    ) -> Result<R> {
        let slot = self.0.inner.clients.resolve(id)?;
        let mut st = slot.lock();
        // The slot may have been recycled for another client between the
        // lock-free resolution and the lock: mutate only on proof of
        // ownership, else the caller's client is gone.
        if st.cvt.client() != id {
            return Err(VbiError::InvalidClient(id));
        }
        let ClientState { cvt, cache } = &mut *st;
        Ok(f(cvt, cache))
    }

    fn with_client_read(&mut self, id: ClientId, index: usize) -> Result<(CvtEntry, bool)> {
        let inner = &self.0.inner;
        if inner.config.lockfree_reads {
            // Fast path: map resolution *and* the published CVT-cache
            // probe inside one epoch-validated window — zero shared locks,
            // nothing mutated but atomic stat counters. Validating the map
            // generation after the cache probe makes slot recycling
            // invisible: destroying the read client bumps its map shard's
            // generation, so a hit here is proof the client was live with
            // this exact published entry.
            if let Some(entry) =
                inner.clients.read_published(id, |slot| slot.reads.lookup_lockfree(index))
            {
                return Ok((entry, true));
            }
        }
        // Slow path (miss, torn read, unpublished client, or lock-free
        // reads disabled): the locked authoritative lookup, identical to
        // every other front end.
        let slot = inner.clients.resolve(id)?;
        let mut st = slot.lock();
        if st.cvt.client() != id {
            return Err(VbiError::InvalidClient(id));
        }
        let ClientState { cvt, cache } = &mut *st;
        ops::cvt_lookup(cvt, cache, id, index)
    }

    fn with_home_mtl<R>(&mut self, vbuid: Vbuid, f: impl FnOnce(&mut Mtl) -> R) -> R {
        let shard = self.0.shard_of(vbuid);
        self.0.inner.shards[shard].ops.fetch_add(1, Ordering::Relaxed);
        f(&mut self.0.lock_shard(shard))
    }

    fn place_vb(&mut self, size_class: SizeClass, props: VbProperties) -> Result<Vbuid> {
        // Round-robin placement, falling over to the next shard when one
        // VBID slice or memory pool is exhausted.
        let count = self.0.inner.shards.len();
        let start = self.0.inner.placement.fetch_add(1, Ordering::Relaxed) % count;
        let mut last_err = VbiError::OutOfVirtualBlocks(size_class);
        for probe in 0..count {
            let shard = (start + probe) % count;
            let mut mtl = self.0.lock_shard(shard);
            match mtl.find_free_vb(size_class).and_then(|vb| {
                mtl.enable_vb(vb, props)?;
                Ok(vb)
            }) {
                Ok(vb) => return Ok(vb),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn shard_count(&self) -> usize {
        self.0.inner.shards.len()
    }

    fn place_vb_on(
        &mut self,
        shard: usize,
        size_class: SizeClass,
        props: VbProperties,
    ) -> Result<Vbuid> {
        let shards = self.0.inner.shards.len();
        if shard >= shards {
            return Err(VbiError::InvalidShard { shard, shards });
        }
        let mut mtl = self.0.lock_shard(shard);
        let vb = mtl.find_free_vb(size_class)?;
        mtl.enable_vb(vb, props)?;
        Ok(vb)
    }

    fn with_mtl_pair<R>(
        &mut self,
        src: Vbuid,
        dst: Vbuid,
        f: impl FnOnce(&mut Mtl, Option<&mut Mtl>) -> R,
    ) -> R {
        let (a, b) = (self.0.shard_of(src), self.0.shard_of(dst));
        // A remap is MTL work on every shard it touches: count it on both
        // sides (once when they coincide) so `ShardLoad::ops_executed`
        // reflects where the work actually ran.
        self.0.inner.shards[a].ops.fetch_add(1, Ordering::Relaxed);
        if a == b {
            return f(&mut self.0.lock_shard(a), None);
        }
        self.0.inner.shards[b].ops.fetch_add(1, Ordering::Relaxed);
        // Two shards: always lock in shard-index order so concurrent remaps
        // (A→B racing B→A) can never deadlock.
        let mut first = self.0.lock_shard(a.min(b));
        let mut second = self.0.lock_shard(a.max(b));
        if a < b {
            f(&mut first, Some(&mut second))
        } else {
            f(&mut second, Some(&mut first))
        }
    }

    fn redirect_clients(&mut self, old: Vbuid, new: Vbuid) -> usize {
        // Snapshot the live client slots, then rewrite under each client's
        // own lock in turn — no shard lock is held here, and every rewrite
        // bumps the client's seqlock epoch (via `invalidate`), so lock-free
        // readers can never serve a stale or torn entry for the moved VB.
        let mut moved = 0;
        for (id, slot) in self.0.inner.clients.live() {
            let mut st = slot.lock();
            // A client destroyed (and its slot possibly recycled) since the
            // snapshot has no entries to redirect; skip rather than touch a
            // new owner's CVT.
            if st.cvt.client() != id {
                continue;
            }
            let ClientState { cvt, cache } = &mut *st;
            for index in cvt.redirect_all(old, new) {
                cache.invalidate(id, index);
                moved += 1;
            }
        }
        moved
    }

    fn note_fault_in(&mut self, client: ClientId, index: usize) {
        // A fault-in moved the accessed page to a fresh frame. The CVT
        // entry itself (VBUID, permissions) is still valid, but the
        // published cache slot must not outlive the frame move unnoticed:
        // invalidating bumps the seqlock epoch, forcing lock-free readers
        // of this slot back onto the authoritative locked path. Called
        // with no shard lock held (client locks only — same order as
        // `redirect_clients`).
        self.0.invalidate_published(client, index);
    }

    fn borrow_frames(&mut self, vbuid: Vbuid, count: usize) -> usize {
        // Called by the engine after an op hit OutOfPhysicalMemory *and*
        // eviction on the home shard came up empty (the residents are
        // structures, not reclaimable data pages). No lock is held here;
        // capacity moves from sibling shards one lock at a time.
        self.0.borrow_frames_for_shard(self.0.shard_of(vbuid), count)
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.0.inner.telemetry)
    }
}

impl VbiService {
    /// Builds the service: `config.shards` MTL shards, each owning
    /// `config.base.phys_frames / config.shards` frames and the matching
    /// slice of every size class's VBID space.
    ///
    /// # Panics
    ///
    /// Panics if the shard count is not a power of two in `[1, 256]`.
    pub fn new(config: ServiceConfig) -> Self {
        let per_shard = VbiConfig {
            phys_frames: config.base.phys_frames / config.shards as u64,
            ..config.base.clone()
        };
        let shards = (0..config.shards)
            .map(|i| {
                let mut mtl = Mtl::for_shard(per_shard.clone(), i, config.shards);
                if let Some(factory) = config.backing {
                    mtl.set_backing(factory()).expect("a fresh MTL has an empty backing store");
                }
                Shard {
                    mtl: Mutex::new(mtl),
                    acquisitions: AtomicU64::new(0),
                    contended: AtomicU64::new(0),
                    ops: AtomicU64::new(0),
                }
            })
            .collect();
        let telemetry = Arc::new(Telemetry::new(
            config.shards,
            config.base.trace_capacity,
            config.base.telemetry_metrics,
            config.base.telemetry_tracing,
        ));
        let clients = ClientMap::new(config.base.cvt_capacity, config.base.cvt_cache_slots);
        Self {
            inner: Arc::new(Inner {
                config,
                shards,
                clients,
                ids: Mutex::new(ClientIdAllocator::new()),
                placement: AtomicUsize::new(0),
                frames_borrowed: AtomicU64::new(0),
                telemetry,
            }),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Number of MTL shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard a VB is homed on — deterministic: the high-order bits of
    /// its VBID (§6.2).
    pub fn shard_of(&self, vbuid: Vbuid) -> usize {
        Mtl::shard_of(vbuid, self.inner.shards.len())
    }

    /// Locks a shard, counting contention.
    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, Mtl> {
        let slot = &self.inner.shards[shard];
        lock_counted(&slot.mtl, &slot.acquisitions, &slot.contended)
    }

    /// Locks the home shard of `vbuid`.
    fn lock_home(&self, vbuid: Vbuid) -> MutexGuard<'_, Mtl> {
        self.lock_shard(self.shard_of(vbuid))
    }

    /// Reads the VB a client's CVT index points at, without touching any
    /// stats — the routing peek used by [`VbiQueue`] to pick a submission
    /// ring. Served lock-free from the published map and CVT cache when
    /// possible.
    pub(crate) fn peek_vbuid(&self, client: ClientId, cvt_index: usize) -> Option<Vbuid> {
        if let Some(vbuid) = self
            .inner
            .clients
            .read_published(client, |slot| slot.reads.peek(cvt_index).map(|entry| entry.vbuid()))
        {
            return Some(vbuid);
        }
        let slot = self.inner.clients.resolve(client).ok()?;
        let st = slot.lock();
        if st.cvt.client() != client {
            return None;
        }
        st.cvt.entry(cvt_index).ok().map(|entry| entry.vbuid())
    }

    /// Executes one [`Op`] through the shared engine against this
    /// service's sharded state — the single entry point the sessions,
    /// [`VbiService::submit`], and [`VbiQueue`] workers all funnel through.
    pub fn execute(&self, op: Op) -> OpResult {
        ops::execute(&mut ServiceEnv(self), op)
    }

    // --- clients ------------------------------------------------------------

    /// Registers a new memory client and returns the session that owns its
    /// API surface. Clone the session into as many threads as needed;
    /// CVT-cache-hit reads from any of them take no client lock.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfClients`] when all 2^16 IDs are live.
    pub fn create_client(&self) -> Result<ServiceSession> {
        let id = ops::create_client(&mut ServiceEnv(self))?;
        Ok(ClientSession::bind(self.clone(), id))
    }

    /// Registers a client with a caller-chosen ID (VM partitioning, §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] if the ID is already live.
    pub fn create_client_with_id(&self, id: ClientId) -> Result<ServiceSession> {
        let id = ops::create_client_with_id(&mut ServiceEnv(self), id)?;
        Ok(ClientSession::bind(self.clone(), id))
    }

    /// Whether `client` is live.
    pub fn client_exists(&self, client: ClientId) -> bool {
        self.inner.clients.contains(client)
    }

    /// Client-lock acquisitions performed on behalf of `client` so far —
    /// the counter behind the "cache-hit reads take zero client locks"
    /// proof in the stress suite.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] for unknown clients.
    pub fn client_lock_acquisitions(&self, client: ClientId) -> Result<u64> {
        Ok(self.inner.clients.resolve(client)?.lock_acquisitions.load(Ordering::Relaxed))
    }

    // --- batched path ----------------------------------------------------------

    /// Executes a batch over the **full op surface**, visiting each shard
    /// at most once per run of data-plane ops: protection checks run first
    /// (lock-free for cached reads, client locks otherwise), checked
    /// accesses are grouped by home shard, and each shard lock is taken a
    /// single time for its whole group, running the deferred MTL halves
    /// through [`vbi_core::ops::run_checked`] — the engine's single
    /// definition of each op's memory effect. MTL-free ops (`Access`,
    /// empty byte spans) answer inline at their batch position.
    /// Control-plane ops (client/VB management) act as sequencing
    /// barriers: pending data ops drain before they execute, so a batch
    /// behaves like its sequential execution. Responses come back in
    /// request order.
    ///
    /// Within a run of data-plane ops, requests targeting one shard
    /// execute in batch order; there is no ordering guarantee *across*
    /// shards (as in hardware, independent MTLs serve independent
    /// traffic).
    pub fn submit(&self, batch: &[Op]) -> Vec<OpResult> {
        let shard_count = self.inner.shards.len();
        let mut responses: Vec<Option<OpResult>> = batch.iter().map(|_| None).collect();
        // Per shard: (batch index, checked address) of deferred data ops.
        let mut pending: Vec<Vec<(usize, VbiAddress)>> = Vec::new();
        pending.resize_with(shard_count, Vec::new);

        for (i, op) in batch.iter().enumerate() {
            if let Some((client, va, kind)) = op.checked_access() {
                // Data-plane: check now (client locks only), defer the MTL
                // half to the per-shard drain.
                match ops::access(&mut ServiceEnv(self), client, va, kind) {
                    Ok(checked) => {
                        let shard = Mtl::shard_of(checked.address.vbuid(), shard_count);
                        pending[shard].push((i, checked.address));
                    }
                    Err(e) => {
                        // A failed check never reaches the drain; record it
                        // here so every submitted op shows up in telemetry
                        // exactly once.
                        let telemetry = &self.inner.telemetry;
                        if telemetry.armed() {
                            telemetry.record(OpSample {
                                kind: OpKind::of(op),
                                client: u32::from(client.0),
                                vbid: 0,
                                shard: 0,
                                start_ns: 0,
                                duration_ns: 0,
                                flags: TraceEvent::FLAG_ERROR,
                                timed: false,
                            });
                        }
                        responses[i] = Some(Err(e));
                    }
                }
            } else {
                // MTL-free ops (Access, empty byte spans) touch only
                // client-lock state or nothing at all: run them through the
                // engine at their batch position, no barrier needed.
                // Control-plane ops drain pending data ops first so the
                // batch keeps sequential semantics.
                let takes_no_shard_lock =
                    matches!(op, Op::Access { .. } | Op::LoadBytes { .. } | Op::StoreBytes { .. });
                if !takes_no_shard_lock {
                    self.drain_pending(batch, &mut pending, &mut responses);
                }
                responses[i] = Some(self.execute(op.clone()));
            }
        }
        self.drain_pending(batch, &mut pending, &mut responses);
        responses.into_iter().map(|r| r.expect("every op answered")).collect()
    }

    /// Runs every deferred MTL half, one shard lock per populated shard —
    /// through the engine's pressure path, so an oversubscribed batch
    /// evicts and retries exactly like the synchronous front end. Fault-in
    /// notifications go out after each shard lock is released (client
    /// locks only — the engine's lock order).
    fn drain_pending(
        &self,
        batch: &[Op],
        pending: &mut [Vec<(usize, VbiAddress)>],
        responses: &mut [Option<OpResult>],
    ) {
        let mut faulted: Vec<usize> = Vec::new();
        let telemetry = &self.inner.telemetry;
        let armed = telemetry.armed();
        let trace_evictions = telemetry.tracing_enabled();
        // A multi-shard drain may borrow sibling capacity for items the
        // home shard cannot serve even after eviction; a single-shard
        // service has no sibling, keeping it op-for-op identical to
        // `System` (one pressure attempt per op).
        let can_borrow = self.inner.shards.len() > 1;
        for (shard, items) in pending.iter_mut().enumerate() {
            if items.is_empty() {
                continue;
            }
            self.inner.shards[shard].ops.fetch_add(items.len() as u64, Ordering::Relaxed);
            // (batch index, address) of items deferred to the borrow retry.
            let mut starved: Vec<(usize, VbiAddress)> = Vec::new();
            {
                let mut mtl = self.lock_shard(shard);
                for (i, address) in items.drain(..) {
                    let timed = armed && telemetry.should_time();
                    let start = if timed { telemetry.now_ns() } else { 0 };
                    let evictions_before = if trace_evictions { mtl.stats().evictions } else { 0 };
                    let (result, fault) = ops::run_checked_pressured(&mut mtl, &batch[i], address);
                    if can_borrow && matches!(result, Err(VbiError::OutOfPhysicalMemory)) {
                        // Defer: recorded (exactly once) by the retry pass.
                        starved.push((i, address));
                        continue;
                    }
                    if armed {
                        let evicted = trace_evictions && mtl.stats().evictions > evictions_before;
                        self.record_drained(
                            &batch[i], address, shard, start, timed, &result, fault, evicted,
                        );
                    }
                    responses[i] = Some(result);
                    if fault {
                        faulted.push(i);
                    }
                }
            }
            if !starved.is_empty() {
                // The shard lock is released: pull capacity over, then run
                // the starved items once more (still OOM if nothing could
                // be borrowed — that final result is the recorded one).
                let want = self.inner.config.base.pressure_reclaim_batch.max(starved.len());
                self.borrow_frames_for_shard(shard, want);
                let mut mtl = self.lock_shard(shard);
                for (i, address) in starved {
                    let timed = armed && telemetry.should_time();
                    let start = if timed { telemetry.now_ns() } else { 0 };
                    let evictions_before = if trace_evictions { mtl.stats().evictions } else { 0 };
                    let (result, fault) = ops::run_checked_pressured(&mut mtl, &batch[i], address);
                    if armed {
                        let evicted = trace_evictions && mtl.stats().evictions > evictions_before;
                        self.record_drained(
                            &batch[i], address, shard, start, timed, &result, fault, evicted,
                        );
                    }
                    responses[i] = Some(result);
                    if fault {
                        faulted.push(i);
                    }
                }
            }
        }
        for i in faulted {
            if let Some((client, va, _)) = batch[i].checked_access() {
                self.invalidate_published(client, va.cvt_index());
            }
        }
    }

    /// Records one drained data op's sample. The drain bypasses
    /// `ops::execute`, so the batched data plane records its own samples —
    /// the MTL half is the op's latency here (checks were amortized up
    /// front).
    #[allow(clippy::too_many_arguments)]
    fn record_drained(
        &self,
        op: &Op,
        address: VbiAddress,
        shard: usize,
        start: u64,
        timed: bool,
        result: &OpResult,
        fault: bool,
        evicted: bool,
    ) {
        let telemetry = &self.inner.telemetry;
        let mut flags = 0u8;
        if result.is_err() {
            flags |= TraceEvent::FLAG_ERROR;
        }
        if fault {
            flags |= TraceEvent::FLAG_FAULT_IN;
        }
        if evicted {
            flags |= TraceEvent::FLAG_EVICT;
        }
        telemetry.record(OpSample {
            kind: OpKind::of(op),
            client: op.client().map_or(u32::MAX, |c| u32::from(c.0)),
            vbid: address.vbuid().vbid(),
            shard: shard as u16,
            start_ns: start,
            duration_ns: if timed { telemetry.now_ns().saturating_sub(start) } else { 0 },
            flags,
            timed,
        });
    }

    /// Invalidates the published CVT-cache slot for (`client`, `index`),
    /// bumping its seqlock epoch (the fault-in notification target).
    fn invalidate_published(&self, client: ClientId, index: usize) {
        if let Ok(slot) = self.inner.clients.resolve(client) {
            let mut st = slot.lock();
            // A recycled slot belongs to someone else now; the departed
            // client has nothing published to invalidate.
            if st.cvt.client() == client {
                st.cache.invalidate(client, index);
            }
        }
    }

    // --- capacity management ----------------------------------------------------

    /// Moves up to `count` frames of physical capacity from sibling shards
    /// to `shard` — the engine's last resort when an op hit
    /// `OutOfPhysicalMemory` and the home shard's own eviction came up
    /// empty (every resident frame is a translation structure or pinned).
    /// Donors are drained in shard-index order, one lock at a time, then
    /// the adoptee absorbs the total; no two shard locks are ever held
    /// together here. Returns the frames actually moved.
    fn borrow_frames_for_shard(&self, shard: usize, count: usize) -> usize {
        let shards = self.inner.shards.len();
        if shards <= 1 || count == 0 {
            return 0;
        }
        let mut gathered: u64 = 0;
        for donor in (0..shards).filter(|&d| d != shard) {
            if gathered >= count as u64 {
                break;
            }
            let want = (count as u64 - gathered) as usize;
            gathered += self.lock_shard(donor).donate_frames(want);
        }
        if gathered > 0 {
            self.lock_shard(shard).adopt_frames(gathered);
            self.inner.frames_borrowed.fetch_add(gathered, Ordering::Relaxed);
        }
        gathered as usize
    }

    /// Total frames of physical capacity moved between shards by the
    /// borrow path so far (see [`ServiceConfig`] and the stress suite's
    /// structure-stranded regression test).
    pub fn frames_borrowed(&self) -> u64 {
        self.inner.frames_borrowed.load(Ordering::Relaxed)
    }

    /// Reclaims up to `count` resident frames from the home shard of the VB
    /// behind (`client`, `index`) — the service face of the engine's
    /// [`vbi_core::ops::reclaim_vb_frames`] ballooning primitive.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] / an invalid-CVT error when the
    /// handle does not resolve.
    pub fn reclaim_vb_frames(&self, client: ClientId, index: usize, count: usize) -> Result<usize> {
        ops::reclaim_vb_frames(&mut ServiceEnv(self), client, index, count)
    }

    /// Occupancy of the backing store on the home shard of the VB behind
    /// (`client`, `index`).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] / an invalid-CVT error when the
    /// handle does not resolve.
    pub fn backing_report(&self, client: ClientId, index: usize) -> Result<ops::BackingReport> {
        ops::backing_report(&mut ServiceEnv(self), client, index)
    }

    // --- statistics -------------------------------------------------------------

    /// Merged [`MtlStats`] across all shards — the report a single MTL
    /// would have produced for the combined traffic.
    pub fn stats(&self) -> MtlStats {
        let mut merged = MtlStats::default();
        for shard in 0..self.inner.shards.len() {
            merged.merge(&self.lock_shard(shard).stats());
        }
        merged
    }

    /// Per-shard [`MtlStats`], in shard order.
    pub fn shard_stats(&self) -> Vec<MtlStats> {
        (0..self.inner.shards.len()).map(|s| self.lock_shard(s).stats()).collect()
    }

    /// Per-shard lock traffic (acquisitions and blocked acquisitions) and
    /// ops executed, so contention can be normalized per op
    /// ([`ShardLoad::contended_per_op`]). The lock counters include the
    /// acquisitions made by the stats readers themselves.
    pub fn contention(&self) -> Vec<ShardLoad> {
        self.inner
            .shards
            .iter()
            .map(|s| ShardLoad {
                acquisitions: s.acquisitions.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                ops_executed: s.ops.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Frames currently free, summed across shards.
    pub fn free_frames(&self) -> u64 {
        (0..self.inner.shards.len()).map(|s| self.lock_shard(s).free_frames()).sum()
    }

    /// Payload-bearing backing-store slots, summed across shards (the
    /// pressure-path counterpart of [`VbiService::free_frames`]).
    pub fn swap_occupancy(&self) -> usize {
        (0..self.inner.shards.len()).map(|s| self.lock_shard(s).swap_occupancy()).sum()
    }

    /// Clears every shard's statistics and the telemetry metrics registry
    /// (warm-up boundary). The trace ring is left alone — it is a window,
    /// not an accumulator.
    pub fn reset_stats(&self) {
        for shard in 0..self.inner.shards.len() {
            self.lock_shard(shard).reset_stats();
        }
        for slot in &self.inner.shards {
            slot.acquisitions.store(0, Ordering::Relaxed);
            slot.contended.store(0, Ordering::Relaxed);
            slot.ops.store(0, Ordering::Relaxed);
        }
        self.inner.telemetry.reset_metrics();
    }

    // --- telemetry --------------------------------------------------------------

    /// The telemetry plane: per-stripe op counters and latency histograms,
    /// runtime toggles, and the structured trace ring.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Accumulated client-map lookup counters: lock-free published-table
    /// hits, generation-validation retries, and authoritative (locked)
    /// fallbacks. Also carried in [`VbiService::snapshot`].
    pub fn client_map_stats(&self) -> vbi_core::telemetry::ClientMapStats {
        self.inner.clients.stats()
    }

    /// One unified observability snapshot: merged and per-shard
    /// [`MtlStats`], TLB and CVT-cache counters, shard lock/work traffic,
    /// per-op latency histograms, and capacity gauges — the same shape
    /// every front end exports (see [`Snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        let per_shard_mtl = self.shard_stats();
        let mut mtl = MtlStats::default();
        for stats in &per_shard_mtl {
            mtl.merge(stats);
        }
        let mut tlb = TlbStats::default();
        let mut per_shard_fragmentation = Vec::with_capacity(self.inner.shards.len());
        for shard in 0..self.inner.shards.len() {
            let guard = self.lock_shard(shard);
            tlb.merge(&guard.tlb_stats());
            per_shard_fragmentation.push(guard.fragmentation(Snapshot::FRAGMENTATION_ORDER));
        }
        let mut cvt_cache = CvtCacheStats::default();
        for (_, slot) in self.inner.clients.live() {
            cvt_cache.merge(&slot.reads.stats());
        }
        let telemetry = &self.inner.telemetry;
        Snapshot {
            front_end: "service",
            shards: self.inner.shards.len(),
            mtl,
            per_shard_mtl,
            tlb,
            cvt_cache,
            client_map: self.inner.clients.stats(),
            shard_activity: self
                .contention()
                .iter()
                .map(|load| vbi_core::telemetry::ShardActivity {
                    acquisitions: load.acquisitions,
                    contended: load.contended,
                    ops_executed: load.ops_executed,
                })
                .collect(),
            per_shard_fragmentation,
            ops: telemetry.op_latencies(),
            ops_per_stripe: telemetry.ops_per_stripe(),
            free_frames: self.free_frames(),
            swap_occupancy: self.swap_occupancy() as u64,
            queue: None,
        }
    }

    /// Runs `f` with the translation of `addr` on its home shard — an
    /// escape hatch for diagnostics (mirrors `System::mtl_translate`).
    ///
    /// # Errors
    ///
    /// Any translation error.
    pub fn translate(
        &self,
        addr: vbi_core::VbiAddress,
        access: MtlAccess,
    ) -> Result<vbi_core::mtl::Translation> {
        self.lock_home(addr.vbuid()).translate(addr, access)
    }
}

impl SessionHost for VbiService {
    fn run_op(&self, op: Op) -> OpResult {
        self.execute(op)
    }

    fn client_cvt_cache_stats(&self, client: ClientId) -> Result<CvtCacheStats> {
        Ok(self.inner.clients.resolve(client)?.reads.stats())
    }

    fn store_bytes_for(
        &self,
        client: ClientId,
        va: vbi_core::client::VirtualAddress,
        data: &[u8],
    ) -> Result<()> {
        ops::store_bytes(&mut ServiceEnv(self), client, va, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use vbi_core::client::VirtualAddress;
    use vbi_core::ops::{OpOutput, VbHandle};
    use vbi_core::perm::Rwx;

    fn service(shards: usize) -> VbiService {
        VbiService::new(ServiceConfig::new(
            shards,
            VbiConfig { phys_frames: 8192, ..VbiConfig::vbi_full() },
        ))
    }

    #[test]
    fn roundtrip_through_one_shard() {
        let svc = service(1);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(8), 0xfeed).unwrap();
        assert_eq!(c.load_u64(vb.at(8)).unwrap(), 0xfeed);
        assert_eq!(c.load_u64(vb.at(16)).unwrap(), 0, "untouched memory reads zero");
    }

    #[test]
    fn vbs_spread_across_shards_and_route_deterministically() {
        let svc = service(4);
        let c = svc.create_client().unwrap();
        let handles: Vec<VbHandle> = (0..8)
            .map(|_| c.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap())
            .collect();
        let shards: Vec<usize> = handles.iter().map(|h| svc.shard_of(h.vbuid)).collect();
        // Round-robin placement touches every shard.
        for s in 0..4 {
            assert!(shards.contains(&s), "shard {s} unused: {shards:?}");
        }
        // Routing is a pure function of the VBUID.
        for h in &handles {
            assert_eq!(svc.shard_of(h.vbuid), Mtl::shard_of(h.vbuid, 4));
            assert_eq!(svc.shard_of(h.vbuid), svc.shard_of(h.vbuid));
        }
        // Traffic lands only on the home shard.
        svc.reset_stats();
        c.store_u64(handles[0].at(0), 7).unwrap();
        let per_shard = svc.shard_stats();
        for (s, stats) in per_shard.iter().enumerate() {
            if s == svc.shard_of(handles[0].vbuid) {
                assert!(stats.translation_requests > 0);
            } else {
                assert_eq!(stats.translation_requests, 0, "shard {s} saw foreign traffic");
            }
        }
    }

    #[test]
    fn permissions_are_enforced() {
        let svc = service(2);
        let owner = svc.create_client().unwrap();
        let reader = svc.create_client().unwrap();
        let vb = owner.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        owner.store_u64(vb.at(0), 9).unwrap();
        let idx = reader.attach(vb.vbuid, Rwx::READ).unwrap();
        let ro = VirtualAddress::new(idx, 0);
        assert_eq!(reader.load_u64(ro).unwrap(), 9);
        assert!(matches!(reader.store_u64(ro, 1), Err(VbiError::PermissionDenied { .. })));
    }

    #[test]
    fn cache_hit_reads_take_no_client_lock() {
        let svc = service(2);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 5).unwrap();
        // Warm the published cache (one locked fill on the first read).
        assert_eq!(c.load_u64(vb.at(0)).unwrap(), 5);
        let locks_before = svc.client_lock_acquisitions(c.id()).unwrap();
        let stats_before = c.cvt_cache_stats().unwrap();
        for _ in 0..100 {
            assert_eq!(c.load_u64(vb.at(0)).unwrap(), 5);
        }
        let locks_after = svc.client_lock_acquisitions(c.id()).unwrap();
        let stats_after = c.cvt_cache_stats().unwrap();
        assert_eq!(locks_after, locks_before, "cache-hit reads must take zero client locks");
        assert_eq!(stats_after.lockfree_hits, stats_before.lockfree_hits + 100);
    }

    #[test]
    fn lockfree_reads_can_be_disabled() {
        let svc = VbiService::new(
            ServiceConfig::new(1, VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() })
                .with_lockfree_reads(false),
        );
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 1).unwrap();
        let locks_before = svc.client_lock_acquisitions(c.id()).unwrap();
        for _ in 0..10 {
            c.load_u64(vb.at(0)).unwrap();
        }
        assert_eq!(
            svc.client_lock_acquisitions(c.id()).unwrap(),
            locks_before + 10,
            "with lock-free reads off, every read locks"
        );
        assert_eq!(c.cvt_cache_stats().unwrap().lockfree_hits, 0);
    }

    #[test]
    fn batched_submit_matches_sequential_execution() {
        let svc = service(4);
        let c = svc.create_client().unwrap();
        let vbs: Vec<VbHandle> = (0..4)
            .map(|_| c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap())
            .collect();
        let client = c.id();
        let mut batch = Vec::new();
        for (i, vb) in vbs.iter().enumerate() {
            batch.push(Op::StoreU64 { client, va: vb.at(64), value: 100 + i as u64 });
        }
        for vb in &vbs {
            batch.push(Op::LoadU64 { client, va: vb.at(64) });
        }
        // An invalid CVT index fails inside the batch without poisoning it.
        batch.push(Op::LoadU64 { client, va: VirtualAddress::new(99, 0) });
        let responses = svc.submit(&batch);
        assert_eq!(responses.len(), batch.len());
        for r in &responses[0..4] {
            assert_eq!(*r, Ok(OpOutput::Unit));
        }
        for (i, r) in responses[4..8].iter().enumerate() {
            assert_eq!(*r, Ok(OpOutput::U64(100 + i as u64)));
        }
        assert!(matches!(responses[8], Err(VbiError::InvalidCvtIndex { .. })));
    }

    #[test]
    fn submit_covers_the_control_plane() {
        // A whole client lifecycle in one batch: create, request, store,
        // load, attach a second client, release, destroy — all through
        // `submit`, exercising the barrier semantics.
        let svc = service(2);
        let reader = svc.create_client().unwrap();
        let owner = svc.create_client().unwrap();
        let vb = owner.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let batch = vec![
            Op::StoreU64 { client: owner.id(), va: vb.at(0), value: 31337 },
            Op::Attach { client: reader.id(), vbuid: vb.vbuid, perms: Rwx::READ },
            Op::LoadU64 { client: owner.id(), va: vb.at(0) },
            Op::StoreBytes { client: owner.id(), va: vb.at(64), data: vec![1, 2, 3] },
            Op::LoadBytes { client: owner.id(), va: vb.at(64), len: 3 },
            Op::StoreBytes { client: owner.id(), va: vb.at(999), data: Vec::new() },
            Op::StoreU8 { client: owner.id(), va: vb.at(200), value: 0xab },
            Op::LoadU8 { client: owner.id(), va: vb.at(200) },
            Op::DestroyClient { client: reader.id() },
        ];
        let responses = svc.submit(&batch);
        assert_eq!(responses[0], Ok(OpOutput::Unit));
        let reader_idx = responses[1].as_ref().unwrap().as_cvt_index().unwrap();
        // The attach barrier drained the store first, so a read through the
        // new entry (sequentially, after the batch) sees the value.
        assert_eq!(responses[2], Ok(OpOutput::U64(31337)));
        assert_eq!(responses[4].as_ref().unwrap().as_bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(responses[5], Ok(OpOutput::Unit), "empty span needs no check");
        assert_eq!(responses[7].as_ref().unwrap().as_u8(), Some(0xab));
        assert_eq!(responses[8], Ok(OpOutput::Unit));
        assert!(!svc.client_exists(reader.id()));
        let _ = reader_idx;
        // The owner's data survived the reader's destruction.
        assert_eq!(owner.load_u64(vb.at(0)).unwrap(), 31337);
    }

    #[test]
    fn release_vb_returns_frames_and_detach_keeps_sharers_alive() {
        let svc = service(2);
        let a = svc.create_client().unwrap();
        let b = svc.create_client().unwrap();
        let free0 = svc.free_frames();
        let vb = a.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = b.attach(vb.vbuid, Rwx::READ).unwrap();
        a.store_u64(vb.at(0), 3).unwrap();
        a.release_vb(vb.cvt_index).unwrap();
        // B still reads: refcount was 2.
        assert_eq!(b.load_u64(VirtualAddress::new(idx_b, 0)).unwrap(), 3);
        b.release_vb(idx_b).unwrap();
        assert_eq!(svc.free_frames(), free0);
    }

    #[test]
    fn destroy_client_releases_everything() {
        let svc = service(4);
        let free0 = svc.free_frames();
        let c = svc.create_client().unwrap();
        let survivor = c.clone();
        for i in 0..6 {
            let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
            c.store_u64(vb.at(0), i).unwrap();
        }
        let id = c.id();
        c.destroy().unwrap();
        assert_eq!(svc.free_frames(), free0);
        assert!(!svc.client_exists(id));
        assert!(matches!(
            survivor.load_u64(VirtualAddress::new(0, 0)),
            Err(VbiError::InvalidClient(_))
        ));
    }

    #[test]
    fn handles_are_shared_across_threads() {
        let svc = service(4);
        let results: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let svc = svc.clone();
                    s.spawn(move || {
                        let c = svc.create_client().unwrap();
                        let vb =
                            c.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                        c.store_u64(vb.at(t * 8), t * 11).unwrap();
                        c.load_u64(vb.at(t * 8)).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, v) in results.into_iter().enumerate() {
            assert_eq!(v, t as u64 * 11);
        }
        let loads = svc.contention();
        assert_eq!(loads.len(), 4);
        assert!(loads.iter().map(|l| l.acquisitions).sum::<u64>() > 0);
    }

    #[test]
    fn create_client_skips_ids_claimed_with_id() {
        let svc = service(1);
        // Claim the IDs the allocator would hand out first (§6.1 VM path).
        let zero = svc.create_client_with_id(ClientId(0)).unwrap();
        let one = svc.create_client_with_id(ClientId(1)).unwrap();
        let vb = zero.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        zero.store_u64(vb.at(0), 7).unwrap();
        // A sequential create must not clobber the live clients.
        let fresh = svc.create_client().unwrap();
        assert!(fresh.id() != ClientId(0) && fresh.id() != ClientId(1), "clobbered");
        assert_eq!(zero.load_u64(vb.at(0)).unwrap(), 7, "state survived");
        // And a destroyed with_id ID is reusable without double-allocation.
        one.destroy().unwrap();
        let reused = svc.create_client().unwrap();
        let again = svc.create_client().unwrap();
        assert_ne!(reused.id(), again.id());
    }

    #[test]
    fn bulk_bytes_roundtrip_with_one_check() {
        let svc = service(2);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        c.store_bytes(vb.at(4000), &data).unwrap(); // straddles a page
        assert_eq!(c.load_bytes(vb.at(4000), 256).unwrap(), data);
        assert!(c.store_bytes(vb.at(vb.vbuid.bytes() - 4), &data).is_err(), "runs off the VB");
        assert_eq!(c.load_bytes(vb.at(0), 0).unwrap(), Vec::<u8>::new());
        // A read-only sharer cannot bulk-write.
        let reader = svc.create_client().unwrap();
        let idx = reader.attach(vb.vbuid, Rwx::READ).unwrap();
        assert!(matches!(
            reader.store_bytes(VirtualAddress::new(idx, 0), &data),
            Err(VbiError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn failed_request_vb_rolls_back_the_enable() {
        let svc = service(1);
        let ghost = ClientId(999);
        let err = svc
            .execute(Op::RequestVb {
                client: ghost,
                bytes: 4096,
                props: VbProperties::NONE,
                perms: Rwx::READ,
            })
            .unwrap_err();
        assert!(matches!(err, VbiError::InvalidClient(_)));
        // The rolled-back VB is immediately reusable by a real client.
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 1).unwrap();
    }

    #[test]
    fn migrate_moves_a_vb_between_shards() {
        let svc = service(4);
        let a = svc.create_client().unwrap();
        let b = svc.create_client().unwrap();
        let free_baseline = svc.free_frames();
        let vb = a.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = b.attach(vb.vbuid, Rwx::READ).unwrap();
        for slot in 0..8u64 {
            a.store_u64(vb.at(slot * 8), 0x5150 + slot).unwrap();
        }
        let from = svc.shard_of(vb.vbuid);
        let to = (from + 1) % svc.shards();

        let moved = a.migrate(vb.cvt_index, to).unwrap();
        assert_eq!(moved.cvt_index, vb.cvt_index, "the program's pointer survives");
        assert_ne!(moved.vbuid, vb.vbuid);
        assert_eq!(svc.shard_of(moved.vbuid), to, "new home is the requested shard");
        // Data survived, through both clients' (redirected) entries.
        for slot in 0..8u64 {
            assert_eq!(a.load_u64(vb.at(slot * 8)).unwrap(), 0x5150 + slot);
            assert_eq!(b.load_u64(VirtualAddress::new(idx_b, slot * 8)).unwrap(), 0x5150 + slot);
        }
        let per_shard = svc.shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.vbs_migrated).sum::<u64>(), 1);
        assert_eq!(per_shard[from].vbs_migrated, 1, "counted on the source shard");
        // Releasing through the redirected entries frees *everything* —
        // including the drained source's frames, which finish_remap's
        // disable returned to the source shard.
        b.release_vb(idx_b).unwrap();
        a.release_vb(vb.cvt_index).unwrap();
        assert_eq!(svc.free_frames(), free_baseline, "the migration leaked frames");
    }

    #[test]
    fn migrate_rejects_bad_shards_and_same_shard_is_allowed() {
        let svc = service(2);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 77).unwrap();
        assert!(matches!(
            c.migrate(vb.cvt_index, 9),
            Err(VbiError::InvalidShard { shard: 9, shards: 2 })
        ));
        // Migrating within the home shard still re-homes to a fresh VBUID.
        let home = svc.shard_of(vb.vbuid);
        let moved = c.migrate(vb.cvt_index, home).unwrap();
        assert_ne!(moved.vbuid, vb.vbuid);
        assert_eq!(svc.shard_of(moved.vbuid), home);
        assert_eq!(c.load_u64(vb.at(0)).unwrap(), 77);
    }

    #[test]
    fn promote_and_clone_run_through_the_service() {
        let svc = service(4);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(64), 31337).unwrap();

        // Clone first: the clone shares frames COW on the same shard.
        let clone = c.clone_vb(vb.cvt_index).unwrap();
        assert_eq!(svc.shard_of(clone.vbuid), svc.shard_of(vb.vbuid), "clones stay home");
        assert_eq!(c.load_u64(clone.at(64)).unwrap(), 31337);
        c.store_u64(clone.at(64), 1).unwrap();
        assert_eq!(c.load_u64(vb.at(64)).unwrap(), 31337, "COW isolated the source");

        // Promote: same CVT index, larger class, same home shard.
        let promoted = c.promote(vb.cvt_index).unwrap();
        assert_eq!(promoted.cvt_index, vb.cvt_index);
        assert_eq!(svc.shard_of(promoted.vbuid), svc.shard_of(vb.vbuid));
        assert_eq!(c.load_u64(vb.at(64)).unwrap(), 31337);
        c.store_u64(vb.at(100 << 10), 2).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.vbs_cloned, 1);
    }

    #[test]
    fn remap_ops_flow_through_submit() {
        let svc = service(2);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 9).unwrap();
        let to = (svc.shard_of(vb.vbuid) + 1) % svc.shards();
        let batch = vec![
            Op::Migrate { client: c.id(), index: vb.cvt_index, to_shard: to },
            Op::LoadU64 { client: c.id(), va: vb.at(0) },
            Op::Promote { client: c.id(), index: vb.cvt_index },
            Op::CloneVb { client: c.id(), index: vb.cvt_index },
        ];
        let responses = svc.submit(&batch);
        let moved = responses[0].as_ref().unwrap().as_handle().unwrap();
        assert_eq!(svc.shard_of(moved.vbuid), to);
        assert_eq!(responses[1], Ok(OpOutput::U64(9)));
        let promoted = responses[2].as_ref().unwrap().as_handle().unwrap();
        assert_eq!(promoted.cvt_index, vb.cvt_index);
        let clone = responses[3].as_ref().unwrap().as_handle().unwrap();
        assert_eq!(c.load_u64(clone.at(0)).unwrap(), 9);
    }

    #[test]
    fn attach_at_places_the_entry_where_asked() {
        let svc = service(2);
        let a = svc.create_client().unwrap();
        let b = svc.create_client().unwrap();
        let vb = a.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        a.store_u64(vb.at(0), 5).unwrap();
        // Mirror the owner's layout in the other client (fork-style).
        b.attach_at(vb.cvt_index, vb.vbuid, Rwx::READ).unwrap();
        assert_eq!(b.load_u64(vb.at(0)).unwrap(), 5);
    }

    // --- memory pressure -----------------------------------------------------

    /// A service whose total frame budget is `frames`, split across shards.
    fn pressured_service(shards: usize, frames: u64) -> VbiService {
        VbiService::new(ServiceConfig::new(
            shards,
            VbiConfig { phys_frames: frames, ..VbiConfig::vbi_full() },
        ))
    }

    fn page_tag(vb: usize, page: u64) -> u64 {
        ((vb as u64) << 32) | (page + 1)
    }

    #[test]
    fn oversubscribed_sessions_evict_fault_and_stay_byte_exact() {
        // 8 VBs x 16 pages = 128 data pages against 96 frames (48 per
        // shard): every shard must evict to make progress.
        let svc = pressured_service(2, 96);
        let c = svc.create_client().unwrap();
        let vbs: Vec<VbHandle> = (0..8)
            .map(|_| c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap())
            .collect();
        for (v, vb) in vbs.iter().enumerate() {
            for page in 0..16u64 {
                c.store_u64(vb.at(page << 12), page_tag(v, page)).unwrap();
            }
        }
        for (v, vb) in vbs.iter().enumerate() {
            for page in 0..16u64 {
                assert_eq!(c.load_u64(vb.at(page << 12)).unwrap(), page_tag(v, page));
            }
        }
        let stats = svc.stats();
        assert!(stats.evictions > 0, "the working set exceeded the frame budget: {stats:?}");
        assert!(stats.writebacks > 0, "dirty pages must be written back: {stats:?}");
        assert!(stats.faults_in > 0, "re-reads must fault pages back in: {stats:?}");
    }

    #[test]
    fn oversubscribed_batches_take_the_pressure_path() {
        let svc = pressured_service(2, 96);
        let c = svc.create_client().unwrap();
        let client = c.id();
        let vbs: Vec<VbHandle> = (0..8)
            .map(|_| c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap())
            .collect();
        let stores: Vec<Op> = vbs
            .iter()
            .enumerate()
            .flat_map(|(v, vb)| {
                (0..16u64).map(move |page| Op::StoreU64 {
                    client,
                    va: vb.at(page << 12),
                    value: page_tag(v, page),
                })
            })
            .collect();
        for response in svc.submit(&stores) {
            response.unwrap();
        }
        let loads: Vec<Op> = vbs
            .iter()
            .flat_map(|vb| {
                (0..16u64).map(move |page| Op::LoadU64 { client, va: vb.at(page << 12) })
            })
            .collect();
        let responses = svc.submit(&loads);
        for (i, response) in responses.into_iter().enumerate() {
            let (v, page) = (i / 16, (i % 16) as u64);
            assert_eq!(response.unwrap(), OpOutput::U64(page_tag(v, page)), "vb {v} page {page}");
        }
        let stats = svc.stats();
        assert!(stats.evictions > 0, "drain_pending must evict under pressure: {stats:?}");
        assert!(stats.faults_in > 0, "drain_pending must fault pages back in: {stats:?}");
    }

    fn fresh_backing() -> Box<dyn PressureBackend> {
        Box::new(vbi_core::swap::BackingStore::new())
    }

    #[test]
    fn reclaim_and_backing_report_expose_the_pressure_state() {
        let svc = VbiService::new(
            ServiceConfig::new(1, VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() })
                .with_backing(fresh_backing),
        );
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for page in 0..16u64 {
            c.store_u64(vb.at(page << 12), page + 1).unwrap();
        }
        // Balloon the VB down: 8 frames move to the configured backing store.
        assert_eq!(svc.reclaim_vb_frames(c.id(), vb.cvt_index, 8).unwrap(), 8);
        let report = svc.backing_report(c.id(), vb.cvt_index).unwrap();
        assert_eq!(report.slots + report.zero_slots, 8);
        assert_eq!(report.stored_bytes, report.slots as u64 * 4096);
        // Touching everything faults the pages back; the store drains.
        for page in 0..16u64 {
            assert_eq!(c.load_u64(vb.at(page << 12)).unwrap(), page + 1);
        }
        let report = svc.backing_report(c.id(), vb.cvt_index).unwrap();
        assert_eq!(report.slots + report.zero_slots, 0);
        assert!(svc.stats().faults_in >= 8);
    }

    #[test]
    fn fault_in_bumps_the_published_cache_epoch() {
        let svc = pressured_service(1, 4096);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 77).unwrap();
        // Warm the published cache, then force the page out. The reclaim
        // itself leaves the cache alone: the CVT entry is still valid.
        assert_eq!(c.load_u64(vb.at(0)).unwrap(), 77);
        assert_eq!(svc.reclaim_vb_frames(c.id(), vb.cvt_index, 1).unwrap(), 1);
        // The faulting read still answers correctly, and its fault-in
        // notification invalidates the published slot...
        assert_eq!(c.load_u64(vb.at(0)).unwrap(), 77);
        let stats_before = c.cvt_cache_stats().unwrap();
        // ...so the next read cannot ride the old snapshot: it misses and
        // refills under the client lock instead of hitting lock-free.
        assert_eq!(c.load_u64(vb.at(0)).unwrap(), 77);
        let stats_after = c.cvt_cache_stats().unwrap();
        assert_eq!(
            stats_after.misses,
            stats_before.misses + 1,
            "the post-fault read must refill the invalidated slot"
        );
        assert_eq!(stats_after.lockfree_hits, stats_before.lockfree_hits);
        // The refill republishes: reads are lock-free again.
        assert_eq!(c.load_u64(vb.at(0)).unwrap(), 77);
        let stats_final = c.cvt_cache_stats().unwrap();
        assert_eq!(stats_final.lockfree_hits, stats_after.lockfree_hits + 1);
    }

    #[test]
    fn snapshot_unifies_shard_and_op_telemetry() {
        let svc = service(4);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for i in 0..10u64 {
            c.store_u64(vb.at(i * 8), i).unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(c.load_u64(vb.at(i * 8)).unwrap(), i);
        }
        let snap = svc.snapshot();
        assert_eq!(snap.front_end, "service");
        assert_eq!(snap.shards, 4);
        assert_eq!(snap.per_shard_mtl.len(), 4);
        assert_eq!(snap.shard_activity.len(), 4);
        assert_eq!(snap.op(vbi_core::telemetry::OpKind::StoreU64).unwrap().count, 10);
        assert_eq!(snap.op(vbi_core::telemetry::OpKind::LoadU64).unwrap().count, 10);
        // The per-shard MTL rows merge to the unified row.
        let mut merged = MtlStats::default();
        for s in &snap.per_shard_mtl {
            merged.merge(s);
        }
        assert_eq!(merged, snap.mtl);
        // Every recorded op lives on some stripe.
        assert_eq!(snap.ops_per_stripe.iter().sum::<u64>(), snap.total_ops());
        // Shards did MTL work for the 20 data ops + the VB request.
        let work: u64 = snap.shard_activity.iter().map(|a| a.ops_executed).sum();
        assert!(work >= 21, "expected >= 21 shard ops, saw {work}");
        // Both export surfaces render.
        assert!(snap.to_json().contains("\"front_end\":\"service\""));
        assert!(snap.to_prometheus().contains("vbi_op_count"));
    }

    #[test]
    fn batched_submit_records_every_op_once() {
        let svc = service(2);
        let c = svc.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        svc.telemetry().reset_metrics();
        let mut batch: Vec<Op> = (0..16u64)
            .map(|i| Op::StoreU64 { client: c.id(), va: vb.at(i * 8), value: i })
            .collect();
        // One op that fails its protection check: unknown client.
        batch.push(Op::LoadU64 { client: ClientId(999), va: vb.at(0) });
        let responses = svc.submit(&batch);
        assert!(responses[16].as_ref().unwrap_err() == &VbiError::InvalidClient(ClientId(999)));
        let snap = svc.snapshot();
        assert_eq!(snap.total_ops(), 17, "each submitted op recorded exactly once");
        assert_eq!(snap.op(vbi_core::telemetry::OpKind::StoreU64).unwrap().count, 16);
        let load = snap.op(vbi_core::telemetry::OpKind::LoadU64).unwrap();
        assert_eq!((load.count, load.errors), (1, 1));
    }

    #[test]
    fn contention_reports_ops_executed_per_shard() {
        let svc = service(2);
        let c = svc.create_client().unwrap();
        let handles: Vec<VbHandle> = (0..4)
            .map(|_| c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap())
            .collect();
        for vb in &handles {
            c.store_u64(vb.at(0), 1).unwrap();
        }
        let loads = svc.contention();
        let total: u64 = loads.iter().map(|l| l.ops_executed).sum();
        // 4 requests + 4 stores did MTL work; round-robin placement lands
        // work on both shards.
        assert!(total >= 8, "expected >= 8 shard ops, saw {total}");
        assert!(loads.iter().all(|l| l.ops_executed > 0));
        assert!(loads.iter().all(|l| l.contended_per_op() >= 0.0));
        svc.reset_stats();
        assert!(svc.contention().iter().all(|l| l.ops_executed == 0));
        assert_eq!(svc.snapshot().total_ops(), 0, "reset clears the metrics registry");
    }

    #[test]
    fn queue_snapshot_carries_queue_activity() {
        let q = VbiQueue::new(ServiceConfig::new(
            2,
            VbiConfig { phys_frames: 8192, ..VbiConfig::vbi_full() },
        ));
        let session = q.create_client().unwrap();
        let vb = session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for i in 0..32u64 {
            q.submit(i, Op::StoreU64 { client: session.id(), va: vb.at(i * 8), value: i });
        }
        q.drain();
        let snap = q.snapshot();
        assert_eq!(snap.front_end, "queue");
        let queue = snap.queue.expect("queue front end exposes queue activity");
        assert_eq!(queue.completed, 32);
        assert_eq!(queue.queued, 0);
        assert!(queue.high_water >= 1);
        assert_eq!(snap.op(vbi_core::telemetry::OpKind::StoreU64).unwrap().count, 32);
        assert!(snap.to_json().contains("\"front_end\":\"queue\""));
    }
}
