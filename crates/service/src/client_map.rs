//! The epoch-validated sharded client map — the structure that makes the
//! service's read path *zero-shared-lock* end to end.
//!
//! The service used to resolve `ClientId -> ClientSlot` through one global
//! `RwLock<HashMap>`: read-mostly, but still a shared lock on every
//! data-plane op. This module replaces it with the [`SeqCvtCache`] seqlock
//! trick generalized to the map itself:
//!
//! * **Map shards**: a `ClientId` hashes to one of [`MAP_SHARDS`] shards
//!   (low bits — consecutive IDs spread). Each shard owns an authoritative
//!   `Mutex<HashMap<ClientId, index>>`, a *published* lock-free lookup
//!   table, and a generation counter.
//! * **Published table**: fixed-capacity open-addressed `AtomicU64` slots,
//!   each packing `(arena index << 16) | client id`. Readers probe a short
//!   window ([`PROBE_WINDOW`]) with plain atomic loads.
//! * **Generation validation**: the shard's generation is a seqlock epoch —
//!   even = stable, odd = a writer is mid-update. A reader snapshots the
//!   generation, probes, reads *through* the resolved slot (including the
//!   CVT-cache lookup), and re-validates the generation afterwards. A
//!   moved generation means a create/destroy raced the read: the reader
//!   retries the window (a handful of loads) rather than taking a lock, so
//!   churn on *other* clients can never force a lock onto a live client's
//!   read path. Only a miss at a *stable* generation falls back to the
//!   authoritative mutex.
//! * **Slot arena**: slots live in an append-only chunked arena sized for
//!   the whole 2^16 `ClientId` space and are never deallocated, so a
//!   `&ClientSlot` resolved lock-free can never dangle. Destroyed clients'
//!   slots are recycled through a free list; the generation protocol makes
//!   reuse safe (any destroy bumps the departed client's map-shard
//!   generation, invalidating every in-flight lock-free read of its slot),
//!   and mutation paths re-verify ownership (`Cvt::client`) under the slot
//!   lock before touching state.
//!
//! Create and destroy take the shard's mutex and bump the generation
//! around their published-table edits. Misses and publish-table overflow
//! fall back to the authoritative mutex.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use vbi_core::client::{ClientId, Cvt};
use vbi_core::cvt_cache::SeqCvtCache;
use vbi_core::error::{Result, VbiError};
use vbi_core::telemetry::ClientMapStats;

use crate::sync::lock_counted;

/// Map shards; `ClientId` low bits select one.
const MAP_SHARDS: usize = 16;

/// Published-table slots per map shard (atomic words, not clients — a
/// shard can always hold more clients than this in its authoritative map).
const PUBLISHED_SLOTS: usize = 64;

/// Linear-probe window: how many published slots a lookup scans from the
/// hash point before declaring the client unpublished.
const PROBE_WINDOW: usize = 8;

/// An unoccupied published slot. Distinguishable from every packed entry:
/// arena indices are < 2^16, so packed values are < 2^32.
const EMPTY: u64 = u64::MAX;

/// Slots per arena chunk.
const ARENA_CHUNK: usize = 256;

/// Chunks in the arena: `ARENA_CHUNK * ARENA_CHUNKS` = 2^16 slots, one per
/// possible live `ClientId`.
const ARENA_CHUNKS: usize = 256;

/// The lockable half of a client's state. The CVT is authoritative; the
/// cache handle inside is the *write side* of the seqlock-published image
/// (its clone in [`ClientSlot::reads`] serves the lock-free path).
#[derive(Debug)]
pub(crate) struct ClientState {
    pub(crate) cvt: Cvt,
    pub(crate) cache: SeqCvtCache,
}

/// One client: the locked state, the lock-free read image, and the
/// client-lock traffic counters. Slots live in the map's arena for the
/// life of the service and are recycled across clients.
#[derive(Debug)]
pub(crate) struct ClientSlot {
    pub(crate) state: Mutex<ClientState>,
    /// Clone of `state.cache` (same shared image) for lock-free readers.
    pub(crate) reads: SeqCvtCache,
    /// Client-lock acquisitions — the counter that proves cache-hit reads
    /// take zero client locks.
    pub(crate) lock_acquisitions: AtomicU64,
    /// Client-lock acquisitions that had to block.
    pub(crate) lock_contended: AtomicU64,
}

impl ClientSlot {
    fn new(cvt: Cvt, cache_slots: usize) -> Self {
        let cache = SeqCvtCache::new(cache_slots);
        Self {
            reads: cache.clone(),
            state: Mutex::new(ClientState { cvt, cache }),
            lock_acquisitions: AtomicU64::new(0),
            lock_contended: AtomicU64::new(0),
        }
    }

    /// Locks the client state, counting the acquisition.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ClientState> {
        lock_counted(&self.state, &self.lock_acquisitions, &self.lock_contended)
    }
}

/// Append-only chunked slot storage. Chunks materialize on first touch and
/// are never freed, so any `&ClientSlot` handed out stays valid for the
/// service's lifetime — the property that lets readers resolve slots with
/// no reference counting at all.
#[derive(Debug)]
struct SlotArena {
    cvt_capacity: usize,
    cache_slots: usize,
    chunks: Vec<OnceLock<Box<[ClientSlot]>>>,
}

impl SlotArena {
    fn new(cvt_capacity: usize, cache_slots: usize) -> Self {
        Self {
            cvt_capacity,
            cache_slots,
            chunks: (0..ARENA_CHUNKS).map(|_| OnceLock::new()).collect(),
        }
    }

    fn get(&self, index: u32) -> &ClientSlot {
        let chunk = index as usize / ARENA_CHUNK;
        let slots = self.chunks[chunk].get_or_init(|| {
            (0..ARENA_CHUNK)
                // Placeholder owner; every slot is reinitialized under its
                // state lock when claimed for a real client.
                .map(|_| {
                    ClientSlot::new(Cvt::new(ClientId(0), self.cvt_capacity), self.cache_slots)
                })
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &slots[index as usize % ARENA_CHUNK]
    }
}

/// Recycling allocator for arena indices. Bounded by the `ClientId` space:
/// a live client holds exactly one index, so `next` can never run past the
/// arena.
#[derive(Debug)]
struct IndexAllocator {
    next: u32,
    free: Vec<u32>,
}

/// One map shard: generation-guarded published table over the
/// authoritative mutex-protected map.
#[derive(Debug)]
struct MapShard {
    /// Seqlock generation: even = stable, odd = a writer is editing the
    /// published table. Every create/destroy on this shard bumps it twice.
    generation: AtomicU64,
    /// Open-addressed `(arena index << 16) | client id` entries,
    /// [`EMPTY`] when unoccupied.
    published: Vec<AtomicU64>,
    authoritative: Mutex<HashMap<ClientId, u32>>,
    lock_acquisitions: AtomicU64,
    lock_contended: AtomicU64,
}

impl MapShard {
    fn new() -> Self {
        Self {
            generation: AtomicU64::new(0),
            published: (0..PUBLISHED_SLOTS).map(|_| AtomicU64::new(EMPTY)).collect(),
            authoritative: Mutex::new(HashMap::new()),
            lock_acquisitions: AtomicU64::new(0),
            lock_contended: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<ClientId, u32>> {
        lock_counted(&self.authoritative, &self.lock_acquisitions, &self.lock_contended)
    }

    /// Where `id`'s probe window starts (Fibonacci hash of the ID — the
    /// low bits already picked the shard, so spread by the whole word).
    fn probe_base(id: ClientId) -> usize {
        ((u64::from(id.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize) % PUBLISHED_SLOTS
    }

    /// Probes the published table for `id`. Scans the whole window (never
    /// stops early at an empty slot: deletions punch holes that later
    /// inserts may sit behind). Plain atomic loads; the caller's
    /// generation check decides whether the answer can be trusted.
    fn find_published(&self, id: ClientId) -> Option<u32> {
        let base = Self::probe_base(id);
        for i in 0..PROBE_WINDOW {
            let entry = self.published[(base + i) % PUBLISHED_SLOTS].load(Ordering::Acquire);
            if entry != EMPTY && entry & 0xFFFF == u64::from(id.0) {
                return Some((entry >> 16) as u32);
            }
        }
        None
    }

    /// Publishes `id -> index` in the first free window slot. Caller holds
    /// the authoritative mutex with the generation odd. `false` = window
    /// full; the client stays authoritative-only (readers fall back).
    fn publish(&self, id: ClientId, index: u32) -> bool {
        let base = Self::probe_base(id);
        for i in 0..PROBE_WINDOW {
            let slot = &self.published[(base + i) % PUBLISHED_SLOTS];
            if slot.load(Ordering::Acquire) == EMPTY {
                slot.store(u64::from(index) << 16 | u64::from(id.0), Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Clears `id`'s published entry, if any. Caller holds the
    /// authoritative mutex with the generation odd.
    fn unpublish(&self, id: ClientId) {
        let base = Self::probe_base(id);
        for i in 0..PROBE_WINDOW {
            let slot = &self.published[(base + i) % PUBLISHED_SLOTS];
            let entry = slot.load(Ordering::Acquire);
            if entry != EMPTY && entry & 0xFFFF == u64::from(id.0) {
                slot.store(EMPTY, Ordering::Release);
                return;
            }
        }
    }
}

/// The sharded, epoch-validated client map. See the [module docs](self)
/// for the protocol.
#[derive(Debug)]
pub(crate) struct ClientMap {
    shards: Vec<MapShard>,
    arena: SlotArena,
    allocator: Mutex<IndexAllocator>,
    alloc_acquisitions: AtomicU64,
    alloc_contended: AtomicU64,
    lockfree_hits: AtomicU64,
    generation_retries: AtomicU64,
    locked_fallbacks: AtomicU64,
}

impl ClientMap {
    pub(crate) fn new(cvt_capacity: usize, cache_slots: usize) -> Self {
        Self {
            shards: (0..MAP_SHARDS).map(|_| MapShard::new()).collect(),
            arena: SlotArena::new(cvt_capacity, cache_slots),
            allocator: Mutex::new(IndexAllocator { next: 0, free: Vec::new() }),
            alloc_acquisitions: AtomicU64::new(0),
            alloc_contended: AtomicU64::new(0),
            lockfree_hits: AtomicU64::new(0),
            generation_retries: AtomicU64::new(0),
            locked_fallbacks: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: ClientId) -> &MapShard {
        &self.shards[id.0 as usize % MAP_SHARDS]
    }

    /// The zero-shared-lock read window: resolves `id`'s slot from the
    /// published table and runs `f` against it *inside* one generation
    /// window, returning `f`'s answer only if the window was stable (no
    /// create/destroy on this map shard raced the whole read — slot
    /// resolution *and* whatever `f` read through it). On a moved
    /// generation the window retries; only a miss at a stable generation
    /// returns `None`, sending the caller to the authoritative path.
    ///
    /// `Some(None)` from `f` (slot valid but `f` declined, e.g. a CVT-cache
    /// miss) also returns `None` — the caller's locked fallback is the
    /// authoritative answer either way.
    pub(crate) fn read_published<R>(
        &self,
        id: ClientId,
        f: impl Fn(&ClientSlot) -> Option<R>,
    ) -> Option<R> {
        let shard = self.shard(id);
        loop {
            let generation = shard.generation.load(Ordering::Acquire);
            if generation & 1 == 1 {
                self.generation_retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let answer = shard.find_published(id).map(|index| f(self.arena.get(index)));
            if shard.generation.load(Ordering::Acquire) == generation {
                return match answer {
                    Some(Some(result)) => {
                        self.lockfree_hits.fetch_add(1, Ordering::Relaxed);
                        Some(result)
                    }
                    Some(None) | None => None,
                };
            }
            self.generation_retries.fetch_add(1, Ordering::Relaxed);
            std::hint::spin_loop();
        }
    }

    /// Lock-free slot resolution for paths that go on to *lock* the slot:
    /// returns the slot if `id` is published at a stable generation. The
    /// slot may be recycled for another client between resolution and the
    /// caller's lock, so mutation paths MUST re-verify ownership
    /// (`state.cvt.client() == id`) under the slot lock — exactly the
    /// check [`crate::VbiService`] performs.
    fn resolve_published(&self, id: ClientId) -> Option<&ClientSlot> {
        let shard = self.shard(id);
        loop {
            let generation = shard.generation.load(Ordering::Acquire);
            if generation & 1 == 1 {
                self.generation_retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let found = shard.find_published(id);
            if shard.generation.load(Ordering::Acquire) == generation {
                return found.map(|index| {
                    self.lockfree_hits.fetch_add(1, Ordering::Relaxed);
                    self.arena.get(index)
                });
            }
            self.generation_retries.fetch_add(1, Ordering::Relaxed);
            std::hint::spin_loop();
        }
    }

    /// Authoritative resolution under the map-shard mutex — the fallback
    /// for misses and unpublished clients.
    pub(crate) fn get_locked(&self, id: ClientId) -> Result<&ClientSlot> {
        self.locked_fallbacks.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(id);
        let auth = shard.lock();
        let index = *auth.get(&id).ok_or(VbiError::InvalidClient(id))?;
        Ok(self.arena.get(index))
    }

    /// Resolves `id`'s slot by any means: published table first,
    /// authoritative mutex on a stable miss.
    pub(crate) fn resolve(&self, id: ClientId) -> Result<&ClientSlot> {
        match self.resolve_published(id) {
            Some(slot) => Ok(slot),
            None => self.get_locked(id),
        }
    }

    /// Inserts fresh client state for `id` unless `id` is already live.
    /// Claims an arena slot, reinitializes it under its state lock (CVT
    /// replaced, shared cache image wiped, traffic counters zeroed), then
    /// publishes under an odd generation.
    pub(crate) fn insert(&self, id: ClientId, cvt: Cvt) -> bool {
        let shard = self.shard(id);
        let mut auth = shard.lock();
        if auth.contains_key(&id) {
            return false;
        }
        let index = {
            let mut alloc =
                lock_counted(&self.allocator, &self.alloc_acquisitions, &self.alloc_contended);
            alloc.free.pop().unwrap_or_else(|| {
                let fresh = alloc.next;
                assert!(
                    (fresh as usize) < ARENA_CHUNK * ARENA_CHUNKS,
                    "arena exhausted: more live slots than ClientIds"
                );
                alloc.next += 1;
                fresh
            })
        };
        let slot = self.arena.get(index);
        {
            // Reinitialize the (possibly recycled) slot for its new owner.
            // Concurrent lock-free readers cannot be fooled: `id` is not
            // published yet, and any reader still inside a window on the
            // slot's previous owner fails its generation validation (that
            // owner's destroy bumped its shard generation before the index
            // reached the free list). Counters reset last, inside the
            // guard, so this claim acquisition is not charged to the new
            // client.
            let mut state = slot.lock();
            state.cvt = cvt;
            state.cache.reset_for_reuse();
            slot.lock_acquisitions.store(0, Ordering::Relaxed);
            slot.lock_contended.store(0, Ordering::Relaxed);
        }
        auth.insert(id, index);
        shard.generation.fetch_add(1, Ordering::AcqRel);
        // Window full is fine: the client stays authoritative-only and
        // readers fall back to the mutex for it.
        let _ = shard.publish(id, index);
        shard.generation.fetch_add(1, Ordering::Release);
        true
    }

    /// Removes `id`, returning its arena index and slot. The caller reads
    /// what it needs from the slot (under the slot lock) and then MUST
    /// [`ClientMap::recycle`] the index — recycling is deferred so the slot
    /// cannot be re-claimed while the caller is still reading it.
    pub(crate) fn remove(&self, id: ClientId) -> Result<(u32, &ClientSlot)> {
        let shard = self.shard(id);
        let mut auth = shard.lock();
        let index = auth.remove(&id).ok_or(VbiError::InvalidClient(id))?;
        // The generation bump is what invalidates every in-flight
        // lock-free read of this client — including reads that already
        // resolved the slot and are touching its published CVT cache.
        shard.generation.fetch_add(1, Ordering::AcqRel);
        shard.unpublish(id);
        shard.generation.fetch_add(1, Ordering::Release);
        drop(auth);
        Ok((index, self.arena.get(index)))
    }

    /// Returns a removed slot's index to the free list (see
    /// [`ClientMap::remove`]).
    pub(crate) fn recycle(&self, index: u32) {
        lock_counted(&self.allocator, &self.alloc_acquisitions, &self.alloc_contended)
            .free
            .push(index);
    }

    /// Whether `id` is live. Advisory: true the instant the authoritative
    /// map says so.
    pub(crate) fn contains(&self, id: ClientId) -> bool {
        self.shard(id).lock().contains_key(&id)
    }

    /// Every live client and its slot, snapshotted shard by shard. Clients
    /// created or destroyed while this runs may or may not appear; callers
    /// re-verify ownership under each slot lock before mutating.
    pub(crate) fn live(&self) -> Vec<(ClientId, &ClientSlot)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let auth = shard.lock();
            out.extend(auth.iter().map(|(&id, &index)| (id, self.arena.get(index))));
        }
        out
    }

    /// Accumulated lookup counters plus arena-occupancy gauges. The gauges
    /// come from the index allocator: every live client holds exactly one
    /// arena index, so `next - free` is the live population and the free
    /// list is the dead (recycled-but-reusable) population. An index
    /// between [`ClientMap::remove`] and [`ClientMap::recycle`] still
    /// counts as live — the gauge is advisory, not a barrier.
    pub(crate) fn stats(&self) -> ClientMapStats {
        let (slots_live, slots_dead) = {
            let alloc =
                lock_counted(&self.allocator, &self.alloc_acquisitions, &self.alloc_contended);
            (u64::from(alloc.next) - alloc.free.len() as u64, alloc.free.len() as u64)
        };
        ClientMapStats {
            lockfree_hits: self.lockfree_hits.load(Ordering::Relaxed),
            generation_retries: self.generation_retries.load(Ordering::Relaxed),
            locked_fallbacks: self.locked_fallbacks.load(Ordering::Relaxed),
            arena_chunks: self.arena.chunks.iter().filter(|c| c.get().is_some()).count() as u64,
            slots_live,
            slots_dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbi_core::addr::{SizeClass, Vbuid};
    use vbi_core::perm::Rwx;

    fn map() -> ClientMap {
        ClientMap::new(16, 8)
    }

    fn cvt_for(id: ClientId) -> Cvt {
        Cvt::new(id, 16)
    }

    #[test]
    fn insert_resolve_remove_roundtrip() {
        let m = map();
        let id = ClientId(7);
        assert!(m.insert(id, cvt_for(id)));
        assert!(!m.insert(id, cvt_for(id)), "double insert refused");
        assert!(m.contains(id));
        let slot = m.resolve(id).unwrap();
        assert_eq!(slot.lock().cvt.client(), id);
        assert_eq!(m.stats().lockfree_hits, 1, "live client resolves lock-free");
        let (index, _) = m.remove(id).unwrap();
        m.recycle(index);
        assert!(!m.contains(id));
        assert!(matches!(m.resolve(id), Err(VbiError::InvalidClient(c)) if c == id));
        assert!(matches!(m.remove(id), Err(VbiError::InvalidClient(_))));
    }

    #[test]
    fn read_published_serves_through_the_slot() {
        let m = map();
        let id = ClientId(21);
        let mut cvt = cvt_for(id);
        let index = cvt.attach(Vbuid::new(SizeClass::Kib4, 9), Rwx::READ).unwrap();
        let entry = *cvt.entry(index).unwrap();
        assert!(m.insert(id, cvt));
        // Nothing published in the CVT cache yet: valid window, f declines.
        assert!(m.read_published(id, |slot| slot.reads.lookup_lockfree(index)).is_none());
        // Fill the cache through the locked side, like a miss would.
        {
            let slot = m.resolve(id).unwrap();
            let mut state = slot.lock();
            use vbi_core::cvt_cache::ClientCvtCache;
            state.cache.fill(id, index, entry);
        }
        let got = m.read_published(id, |slot| slot.reads.lookup_lockfree(index)).unwrap();
        assert_eq!(got.vbuid().vbid(), 9);
        // Unknown clients miss at a stable generation (no retry storm).
        assert!(m.read_published(ClientId(500), |_| Some(())).is_none());
    }

    #[test]
    fn recycled_slots_serve_their_new_owner() {
        let m = map();
        let old = ClientId(5);
        assert!(m.insert(old, cvt_for(old)));
        let (index, slot) = m.remove(old).unwrap();
        let vbuids: Vec<Vbuid> = slot.lock().cvt.iter().map(|(_, entry)| entry.vbuid()).collect();
        assert!(vbuids.is_empty());
        m.recycle(index);
        // A different ID on a different map shard reuses the same slot.
        let new = ClientId(6);
        assert!(m.insert(new, cvt_for(new)));
        let slot = m.resolve(new).unwrap();
        assert_eq!(slot.lock_acquisitions.load(Ordering::Relaxed), 0, "claim not charged");
        assert_eq!(slot.lock().cvt.client(), new, "slot reinitialized for the new owner");
        assert!(m.resolve(old).is_err(), "the departed owner does not resolve");
    }

    #[test]
    fn overflowed_publish_windows_fall_back_to_the_mutex() {
        let m = map();
        // 80 clients on one map shard (IDs ≡ 1 mod 16) against 64
        // published slots in windows of 8: some cannot publish.
        let ids: Vec<ClientId> = (0..80u16).map(|i| ClientId(1 + i * 16)).collect();
        for &id in &ids {
            assert!(m.insert(id, cvt_for(id)));
        }
        for &id in &ids {
            let slot = m.resolve(id).unwrap();
            assert_eq!(slot.lock().cvt.client(), id);
        }
        let stats = m.stats();
        assert!(stats.locked_fallbacks > 0, "overflowed clients resolve via the mutex");
        assert!(stats.lockfree_hits > 0, "published clients resolve lock-free");
        assert_eq!(
            stats.lockfree_hits + stats.locked_fallbacks,
            ids.len() as u64,
            "every resolution lands on exactly one path"
        );
        // Tear them all down and rebuild: holes in the probe windows must
        // not hide later inserts.
        for &id in &ids {
            let (index, _) = m.remove(id).unwrap();
            m.recycle(index);
        }
        for &id in &ids {
            assert!(m.insert(id, cvt_for(id)));
            assert_eq!(m.resolve(id).unwrap().lock().cvt.client(), id);
        }
    }

    #[test]
    fn stats_merge_equals_a_combined_runs_counters() {
        // Two maps process two workload halves; merging their counters
        // must equal one map that processed both halves — the property the
        // aggregating front ends (snapshot merges across services) rely
        // on. Single-threaded runs are deterministic: no generation ever
        // moves mid-read, so retries stay zero and the hit/fallback split
        // depends only on the op sequence.
        let run = |m: &ClientMap, base: u16, clients: u16, reads: usize| {
            for i in 0..clients {
                let id = ClientId(base + i);
                assert!(m.insert(id, cvt_for(id)));
            }
            for i in 0..clients {
                let id = ClientId(base + i);
                for _ in 0..reads {
                    m.resolve(id).unwrap();
                }
                let _ = m.resolve(ClientId(60_000 + i)); // stable miss
            }
            for i in 0..clients {
                let (index, _) = m.remove(ClientId(base + i)).unwrap();
                m.recycle(index);
            }
        };
        let first = map();
        run(&first, 0, 12, 3);
        let second = map();
        run(&second, 300, 7, 5);

        let combined = map();
        run(&combined, 0, 12, 3);
        run(&combined, 300, 7, 5);

        let mut merged = first.stats();
        merged.merge(&second.stats());
        let both = combined.stats();
        // Lookup *counters* compose across runs. The arena gauges do not
        // here — the combined run recycles the first half's freed slots —
        // so they get their own chunk-aligned test below.
        assert_eq!(merged.lockfree_hits, both.lockfree_hits);
        assert_eq!(merged.generation_retries, both.generation_retries);
        assert_eq!(merged.locked_fallbacks, both.locked_fallbacks);
        assert_eq!(merged.lockfree_hits, 12 * 3 + 7 * 5, "live reads resolve lock-free");
        assert_eq!(merged.generation_retries, 0, "nothing races a single thread");
        assert!(merged.locked_fallbacks >= 12 + 7, "stable misses take the mutex");
    }

    #[test]
    fn arena_gauges_merge_equals_a_combined_run() {
        // Gauges sum across *distinct* maps (two services aggregated into
        // one snapshot report the combined footprint). Construct halves
        // whose combined run allocates the same slots the halves allocate
        // separately: whole chunks per half, destruction only in the last
        // half so the combined run's later inserts cannot recycle earlier
        // frees.
        let fill = |m: &ClientMap, base: u16, clients: u16, destroy: u16| {
            for i in 0..clients {
                let id = ClientId(base + i);
                assert!(m.insert(id, cvt_for(id)));
            }
            for i in 0..destroy {
                let (index, _) = m.remove(ClientId(base + i)).unwrap();
                m.recycle(index);
            }
        };
        let first = map();
        fill(&first, 0, ARENA_CHUNK as u16, 0);
        let second = map();
        fill(&second, ARENA_CHUNK as u16, ARENA_CHUNK as u16, 48);

        let combined = map();
        fill(&combined, 0, ARENA_CHUNK as u16, 0);
        fill(&combined, ARENA_CHUNK as u16, ARENA_CHUNK as u16, 48);

        let mut merged = first.stats();
        merged.merge(&second.stats());
        assert_eq!(merged, combined.stats());
        assert_eq!(merged.arena_chunks, 2, "each half filled exactly one chunk");
        assert_eq!(merged.slots_live, 2 * ARENA_CHUNK as u64 - 48);
        assert_eq!(merged.slots_dead, 48, "destroyed slots park on the free list");
    }

    #[test]
    fn live_lists_every_client() {
        let m = map();
        let ids: Vec<ClientId> = (0..40u16).map(ClientId).collect();
        for &id in &ids {
            assert!(m.insert(id, cvt_for(id)));
        }
        let mut live: Vec<u16> = m.live().into_iter().map(|(id, _)| id.0).collect();
        live.sort_unstable();
        assert_eq!(live, (0..40u16).collect::<Vec<_>>());
    }
}
