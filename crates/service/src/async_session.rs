//! `AsyncSession` — a waker-driven async front end over [`VbiQueue`].
//!
//! The queue front end gives clients the paper's asynchronous-MTL shape
//! (submit tagged work, continue executing, collect completions), but its
//! consumers still *poll*: somebody has to sit in [`VbiQueue::reap`] and
//! fan results back out. That caps the concurrency story at "a few
//! pipelining threads". This module replaces the polling reaper with the
//! notification layer the roadmap calls for, so tens of thousands of
//! logical clients can each await their own operations on a handful of OS
//! threads:
//!
//! * a **waker registry** keyed by CQE tag: an awaiting future parks its
//!   [`Waker`] under its tag, and the shard worker that finishes the op
//!   dispatches the result straight to the registry (via the queue's
//!   completion hook) and wakes exactly that future — no shared completion
//!   queue, no scan, no reaper thread;
//! * a minimal **std-only executor**: [`block_on`] for driving one future
//!   on the current thread and [`Executor`] for cooperatively running many
//!   tasks over a ready list (a mutexed deque standing in for the lock-free
//!   array queue a production runtime would use) — no tokio, no I/O
//!   reactor, just `Waker`s and `thread::park`;
//! * an **[`AsyncSession`]** handle mirroring the synchronous
//!   [`ClientSession`](vbi_core::session::ClientSession) surface as `async
//!   fn`s: each call acquires in-flight budget, registers its tag, submits
//!   through the existing rings, and resolves when the completion wakes it;
//! * **backpressure**: every session carries a bounded in-flight budget
//!   (semaphore-style, released when the completion is *consumed* by the
//!   awaiting future, not merely produced), so slow tasks cannot pile
//!   unconsumed results into unbounded memory. Budget waits surface as
//!   `backpressure_waits` and pipeline depth as `inflight_high_water` in
//!   the queue's [`Snapshot`](vbi_core::telemetry::Snapshot).
//!
//! ## Exactly-once completion
//!
//! A tag lives in the registry from just before submission until exactly
//! one of: the future consumes its result (`poll` → `Ready`), or the
//! future is dropped first and the registry's `abandon` removes it (a
//! completion arriving after that finds no entry and is discarded — the
//! op itself still executed; cancellation abandons the *answer*, never the
//! effect). Budget is released by whichever side removes the entry, so a
//! permit can never leak or double-release.
//!
//! ## Ordering
//!
//! Identical to [`VbiQueue`]: ops submitted through one session to the
//! same VB land on the same ring and execute in submission order, but a
//! *dependent* op must await its predecessor's result first — `await` is
//! this front end's completion barrier.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use vbi_core::client::{ClientId, VirtualAddress};
use vbi_core::error::Result;
use vbi_core::ops::{Op, OpOutput, OpResult, VbHandle};
use vbi_core::perm::Rwx;
use vbi_core::vb::VbProperties;

use crate::queue::{CompletionHook, VbiQueue, ASYNC_TAG_BIT};
use crate::sync::unpoison;
use crate::{ServiceConfig, VbiService};

/// In-flight ops an [`AsyncSession`] may have outstanding before further
/// submissions wait ([`AsyncFront::create_session`] default).
pub const DEFAULT_SESSION_BUDGET: usize = 32;

/// Stripes in the waker registry. Tags are sequential, so striping by the
/// low bits spreads concurrent completions across locks evenly.
const REGISTRY_STRIPES: usize = 64;

// --- waker registry ----------------------------------------------------------

/// Hashes sequential tags (and executor task ids) with one multiply — a
/// SipHash per registry probe would be the single biggest per-op cost in
/// the dispatch path. An odd multiplier permutes every bit width, so
/// sequential keys spread over the table as well as random ones.
#[derive(Default)]
struct TagHasher(u64);

impl std::hash::Hasher for TagHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("tags hash as u64, never as bytes");
    }

    fn write_u64(&mut self, tag: u64) {
        self.0 = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type TagMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<TagHasher>>;

/// One awaited op's slot in the registry: either still executing (with the
/// awaiting task's waker) or finished with its result parked until the
/// future consumes it.
#[derive(Debug)]
enum PendingOp {
    /// Submitted, completion not yet dispatched. The waker is parked at
    /// registration (the future registers on its first poll, *before*
    /// submitting), so the dispatching worker almost never finds it empty —
    /// `None` only after a spurious re-poll raced the entry's removal.
    Waiting(Waker),
    /// Completion dispatched, result waiting for the future to consume it.
    Done(OpResult),
}

/// Tag → pending-op map the shard workers dispatch completions into. This
/// is the whole notification layer: `register` (waker included) before
/// submit, `complete` from the worker, `poll_take` from the future.
#[derive(Debug, Default)]
pub(crate) struct WakerRegistry {
    stripes: Box<[Mutex<TagMap<PendingOp>>]>,
}

impl WakerRegistry {
    fn new() -> Self {
        Self { stripes: (0..REGISTRY_STRIPES).map(|_| Mutex::default()).collect() }
    }

    fn stripe(&self, tag: u64) -> &Mutex<TagMap<PendingOp>> {
        &self.stripes[(tag & (REGISTRY_STRIPES as u64 - 1)) as usize]
    }

    /// Claims `tag` for an op about to be submitted, waker already parked.
    /// Must happen *before* the submit, or the completion could race an
    /// empty registry.
    fn register(&self, tag: u64, waker: Waker) {
        let stale = unpoison(self.stripe(tag).lock()).insert(tag, PendingOp::Waiting(waker));
        debug_assert!(stale.is_none(), "tag {tag:#x} registered twice");
    }

    /// The future's re-poll: takes the result if the completion already
    /// landed (removing the entry — the consume point), otherwise re-parks
    /// the (possibly changed) waker for the dispatching worker to wake.
    fn poll_take(&self, tag: u64, waker: &Waker) -> Option<OpResult> {
        let mut stripe = unpoison(self.stripe(tag).lock());
        match stripe.remove(&tag) {
            Some(PendingOp::Done(result)) => Some(result),
            Some(PendingOp::Waiting(_)) => {
                stripe.insert(tag, PendingOp::Waiting(waker.clone()));
                None
            }
            None => unreachable!("tag {tag:#x} polled after consume or abandon"),
        }
    }

    /// Removes `tag` without consuming a result (the future was dropped
    /// before `Ready`). `true` means the entry was still present — the
    /// caller owns the budget release. A completion dispatched later finds
    /// nothing and is discarded.
    fn abandon(&self, tag: u64) -> bool {
        unpoison(self.stripe(tag).lock()).remove(&tag).is_some()
    }

    /// Registered tags whose futures have neither consumed nor abandoned
    /// them (test/diagnostic visibility).
    pub(crate) fn outstanding(&self) -> usize {
        self.stripes.iter().map(|s| unpoison(s.lock()).len()).sum()
    }
}

impl CompletionHook for WakerRegistry {
    /// The worker-side dispatch: park the result, take the waker, wake it
    /// *after* dropping the stripe lock (the woken task may poll
    /// immediately from another thread and would deadlock on the stripe).
    fn complete(&self, tag: u64, result: OpResult) {
        let waker = {
            let mut stripe = unpoison(self.stripe(tag).lock());
            match stripe.get_mut(&tag) {
                Some(entry @ PendingOp::Waiting(_)) => {
                    let PendingOp::Waiting(waker) =
                        std::mem::replace(entry, PendingOp::Done(result))
                    else {
                        unreachable!("matched Waiting above");
                    };
                    Some(waker)
                }
                Some(PendingOp::Done(_)) => unreachable!("tag {tag:#x} completed twice"),
                // The future was dropped mid-flight: the op ran, nobody
                // wants the answer.
                None => None,
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

// --- backpressure budget -----------------------------------------------------

/// A session's bounded in-flight budget: a semaphore whose permits are
/// acquired before submission and released when the completion is
/// *consumed* (or the awaiting future dropped), bounding submitted ops
/// plus unconsumed results alike.
///
/// The uncontended path — the overwhelmingly common one — is a single CAS
/// on acquire and a fetch-add plus one flag load on release; the waiter
/// list's mutex is touched only when a task actually has to park. The
/// acquire side sets `contended` *before* re-checking `available`, and the
/// release side bumps `available` *before* loading `contended` (both
/// `SeqCst`), so one of them always sees the other: a release can never
/// slip between "check failed" and "waker parked" unobserved.
#[derive(Debug)]
struct InflightBudget {
    available: AtomicUsize,
    /// True while `waiters` may be non-empty; flipped only under the
    /// `waiters` lock.
    contended: AtomicBool,
    /// Wakers of tasks parked in [`InflightBudget::acquire`]. Release
    /// wakes *all* of them: budgets are per session, so the herd is the
    /// session's own concurrency (small), and waking everyone makes stale
    /// or duplicate wakers harmless — no lost-wakeup window.
    waiters: Mutex<Vec<Waker>>,
}

impl InflightBudget {
    fn new(permits: usize) -> Self {
        assert!(permits > 0, "a session needs at least one in-flight permit");
        Self {
            available: AtomicUsize::new(permits),
            contended: AtomicBool::new(false),
            waiters: Mutex::new(Vec::new()),
        }
    }

    fn try_acquire(&self) -> bool {
        let mut current = self.available.load(Ordering::SeqCst);
        loop {
            if current == 0 {
                return false;
            }
            match self.available.compare_exchange_weak(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    fn acquire<'a>(&'a self, queue: &'a VbiQueue) -> Acquire<'a> {
        Acquire { budget: self, queue, waited: false }
    }

    fn release(&self) {
        self.available.fetch_add(1, Ordering::SeqCst);
        if self.contended.load(Ordering::SeqCst) {
            let waiters = {
                let mut waiters = unpoison(self.waiters.lock());
                self.contended.store(false, Ordering::SeqCst);
                std::mem::take(&mut *waiters)
            };
            for waker in waiters {
                waker.wake();
            }
        }
    }
}

/// The budget-acquisition future: resolves when a permit is taken. Counts
/// one `backpressure_waits` the first time it actually has to park.
struct Acquire<'a> {
    budget: &'a InflightBudget,
    queue: &'a VbiQueue,
    waited: bool,
}

impl Future for Acquire<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.budget.try_acquire() {
            return Poll::Ready(());
        }
        {
            let mut waiters = unpoison(this.budget.waiters.lock());
            this.budget.contended.store(true, Ordering::SeqCst);
            // Re-check after raising the flag: a release between the fast
            // path and here either sees the flag (and will drain us) or
            // happened before it (and this retry sees the permit).
            if this.budget.try_acquire() {
                if waiters.is_empty() {
                    this.budget.contended.store(false, Ordering::SeqCst);
                }
                return Poll::Ready(());
            }
            waiters.push(cx.waker().clone());
        }
        if !this.waited {
            this.waited = true;
            this.queue.note_backpressure_wait();
        }
        Poll::Pending
    }
}

// --- the op future -----------------------------------------------------------

/// Where an awaited op is in its life, driving both poll and cancellation.
enum OpState {
    /// Permit held, nothing registered or submitted yet. Registration and
    /// submission happen on the first poll so the waker is parked in the
    /// registry *before* the worker can dispatch — one stripe acquisition
    /// covers both.
    Unsent(Op),
    /// Registered and submitted; the registry entry owns the answer.
    InFlight,
    /// Result consumed; entry gone, permit released.
    Consumed,
}

/// An awaited operation. Holds the session's budget permit until the
/// result is consumed or the future dropped.
struct OpFuture<'a> {
    front: &'a FrontInner,
    budget: Option<&'a InflightBudget>,
    tag: u64,
    state: OpState,
}

impl Future for OpFuture<'_> {
    type Output = OpResult;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<OpResult> {
        let this = self.get_mut();
        match std::mem::replace(&mut this.state, OpState::InFlight) {
            OpState::Unsent(op) => {
                this.front.registry.register(this.tag, cx.waker().clone());
                this.front.queue.submit(this.tag, op);
                Poll::Pending
            }
            OpState::InFlight => match this.front.registry.poll_take(this.tag, cx.waker()) {
                Some(result) => {
                    this.state = OpState::Consumed;
                    if let Some(budget) = this.budget {
                        budget.release();
                    }
                    Poll::Ready(result)
                }
                None => Poll::Pending,
            },
            OpState::Consumed => unreachable!("op future polled after Ready"),
        }
    }
}

impl Drop for OpFuture<'_> {
    fn drop(&mut self) {
        // Cancellation: whoever removes the registry entry owns the
        // permit. Dropped before the first poll, nothing was submitted and
        // the permit comes straight back; dropped in flight, `abandon`
        // owns the release (returning false would mean the entry was
        // already consumed, which the state rules out).
        match self.state {
            OpState::Unsent(_) => {
                if let Some(budget) = self.budget {
                    budget.release();
                }
            }
            OpState::InFlight => {
                if self.front.registry.abandon(self.tag) {
                    if let Some(budget) = self.budget {
                        budget.release();
                    }
                }
            }
            OpState::Consumed => {}
        }
    }
}

// --- the front end -----------------------------------------------------------

#[derive(Debug)]
struct FrontInner {
    queue: Arc<VbiQueue>,
    registry: Arc<WakerRegistry>,
    /// Next async tag (63 usable bits; [`ASYNC_TAG_BIT`] marks the space).
    next_tag: AtomicU64,
}

/// The async front end: owns the waker registry over one [`VbiQueue`] and
/// mints [`AsyncSession`]s. Cheap to clone; all clones share the queue.
///
/// One front per queue: constructing it installs the queue's completion
/// hook, claiming the high-bit (`ASYNC_TAG_BIT`) tag space. Synchronous tagged
/// submissions (without the bit) keep flowing through the shared
/// completion queue untouched, so sync and async traffic coexist.
#[derive(Debug, Clone)]
pub struct AsyncFront {
    inner: Arc<FrontInner>,
}

impl AsyncFront {
    /// Builds a service, the queue over it, and the async front over the
    /// queue.
    pub fn new(config: ServiceConfig) -> Self {
        Self::over(Arc::new(VbiQueue::new(config)))
    }

    /// Builds the front over an existing queue, installing its completion
    /// hook.
    ///
    /// # Panics
    ///
    /// Panics if the queue already has an async front.
    pub fn over(queue: Arc<VbiQueue>) -> Self {
        let registry = Arc::new(WakerRegistry::new());
        queue.install_hook(Arc::clone(&registry) as Arc<dyn CompletionHook>);
        Self { inner: Arc::new(FrontInner { queue, registry, next_tag: AtomicU64::new(0) }) }
    }

    /// The queue underneath (for depth/occupancy counters and synchronous
    /// submissions).
    pub fn queue(&self) -> &VbiQueue {
        &self.inner.queue
    }

    /// The service underneath (for setup calls and statistics).
    pub fn service(&self) -> &VbiService {
        self.inner.queue.service()
    }

    /// Registers a new client and returns its async session with the
    /// [`DEFAULT_SESSION_BUDGET`]. Client creation itself is a synchronous
    /// control-plane call — it must allocate the ID before any op can
    /// name it.
    ///
    /// # Errors
    ///
    /// Returns `VbiError::OutOfClients` when all 2^16 IDs are live.
    pub fn create_session(&self) -> Result<AsyncSession> {
        self.create_session_with_budget(DEFAULT_SESSION_BUDGET)
    }

    /// [`AsyncFront::create_session`] with an explicit in-flight budget.
    ///
    /// # Errors
    ///
    /// Returns `VbiError::OutOfClients` when all 2^16 IDs are live.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero (such a session could never submit).
    pub fn create_session_with_budget(&self, budget: usize) -> Result<AsyncSession> {
        let client = self.service().create_client()?.id();
        Ok(self.session_for(client, budget))
    }

    /// Wraps an existing client (created through any front end) in an
    /// async session.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn session_for(&self, client: ClientId, budget: usize) -> AsyncSession {
        AsyncSession {
            inner: Arc::new(SessionInner {
                front: self.clone(),
                client,
                budget: InflightBudget::new(budget),
            }),
        }
    }

    /// Submits one op outside any session budget and awaits its result —
    /// the control-plane escape hatch (`Op::CreateClient`,
    /// `Op::DestroyClient`, full-surface test drivers).
    pub async fn execute(&self, op: Op) -> OpResult {
        self.submit_op(None, op).await
    }

    /// The one submission path: optional budget acquire, then the op
    /// future (whose first poll registers the waker and submits in one
    /// stripe acquisition — registration still precedes submission, so the
    /// completion always finds the entry). No await point separates the
    /// acquired permit from the future's ownership of it, so cancellation
    /// can never leak an entry or a permit.
    async fn submit_op(&self, budget: Option<&InflightBudget>, op: Op) -> OpResult {
        if let Some(budget) = budget {
            budget.acquire(self.queue()).await;
        }
        let tag = ASYNC_TAG_BIT | self.inner.next_tag.fetch_add(1, Ordering::Relaxed);
        OpFuture { front: &self.inner, budget, tag, state: OpState::Unsent(op) }.await
    }

    /// Registered tags not yet consumed or abandoned (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.inner.registry.outstanding()
    }
}

// --- the session -------------------------------------------------------------

#[derive(Debug)]
struct SessionInner {
    front: AsyncFront,
    client: ClientId,
    budget: InflightBudget,
}

/// One client's async surface: the
/// [`ClientSession`](vbi_core::session::ClientSession) verbs as
/// `async fn`s, submitting
/// through the queue and resolving on completion dispatch. Clones share
/// the client *and* its in-flight budget, so a session's concurrency bound
/// holds across every task using it.
#[derive(Debug, Clone)]
pub struct AsyncSession {
    inner: Arc<SessionInner>,
}

impl AsyncSession {
    /// The client this session runs for.
    pub fn id(&self) -> ClientId {
        self.inner.client
    }

    /// The front end this session submits through.
    pub fn front(&self) -> &AsyncFront {
        &self.inner.front
    }

    /// Submits `op` under this session's budget and awaits its outcome —
    /// the generic path the typed verbs below wrap (and the equivalence
    /// suite drives directly).
    pub async fn run(&self, op: Op) -> OpResult {
        self.inner.front.submit_op(Some(&self.inner.budget), op).await
    }

    /// `request_vb` (§4.1) — ask for a new VB of at least `bytes`.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::request_vb`](vbi_core::session::ClientSession::request_vb).
    pub async fn request_vb(
        &self,
        bytes: u64,
        props: VbProperties,
        perms: Rwx,
    ) -> Result<VbHandle> {
        match self.run(Op::RequestVb { client: self.id(), bytes, props, perms }).await? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("request_vb returns a handle, got {other:?}"),
        }
    }

    /// `attach` (§4.1) — map an existing VB into this client's CVT.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::attach`](vbi_core::session::ClientSession::attach).
    pub async fn attach(&self, vbuid: vbi_core::addr::Vbuid, perms: Rwx) -> Result<usize> {
        match self.run(Op::Attach { client: self.id(), vbuid, perms }).await? {
            OpOutput::CvtIndex(index) => Ok(index),
            other => unreachable!("attach returns an index, got {other:?}"),
        }
    }

    /// `promote` (§4.4) — move the VB behind `index` to the next size
    /// class.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::promote`](vbi_core::session::ClientSession::promote).
    pub async fn promote(&self, index: usize) -> Result<VbHandle> {
        match self.run(Op::Promote { client: self.id(), index }).await? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("promote returns a handle, got {other:?}"),
        }
    }

    /// `clone_vb` (§4.4) — enable a same-class copy of the VB behind
    /// `index`.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::clone_vb`](vbi_core::session::ClientSession::clone_vb).
    pub async fn clone_vb(&self, index: usize) -> Result<VbHandle> {
        match self.run(Op::CloneVb { client: self.id(), index }).await? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("clone_vb returns a handle, got {other:?}"),
        }
    }

    /// Cross-shard migration (§4.2.2, §6.2) of the VB behind `index`.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::migrate`](vbi_core::session::ClientSession::migrate).
    pub async fn migrate(&self, index: usize, to_shard: usize) -> Result<VbHandle> {
        match self.run(Op::Migrate { client: self.id(), index, to_shard }).await? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("migrate returns a handle, got {other:?}"),
        }
    }

    /// Protection-checked functional load of a `u64`.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::load_u64`](vbi_core::session::ClientSession::load_u64).
    pub async fn load_u64(&self, va: VirtualAddress) -> Result<u64> {
        match self.run(Op::LoadU64 { client: self.id(), va }).await? {
            OpOutput::U64(value) => Ok(value),
            other => unreachable!("load returns a u64, got {other:?}"),
        }
    }

    /// Protection-checked functional store of a `u64`.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::store_u64`](vbi_core::session::ClientSession::store_u64).
    pub async fn store_u64(&self, va: VirtualAddress, value: u64) -> Result<()> {
        self.run(Op::StoreU64 { client: self.id(), va, value }).await.map(|_| ())
    }

    /// Protection-checked functional load of a byte span.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::load_bytes`](vbi_core::session::ClientSession::load_bytes).
    pub async fn load_bytes(&self, va: VirtualAddress, len: usize) -> Result<Vec<u8>> {
        match self.run(Op::LoadBytes { client: self.id(), va, len }).await? {
            OpOutput::Bytes(bytes) => Ok(bytes),
            other => unreachable!("load returns bytes, got {other:?}"),
        }
    }

    /// Protection-checked functional store of a byte span.
    ///
    /// # Errors
    ///
    /// As [`ClientSession::store_bytes`](vbi_core::session::ClientSession::store_bytes).
    pub async fn store_bytes(&self, va: VirtualAddress, data: &[u8]) -> Result<()> {
        self.run(Op::StoreBytes { client: self.id(), va, data: data.to_vec() }).await.map(|_| ())
    }
}

// --- the executor ------------------------------------------------------------

/// Wakes [`block_on`]'s thread out of its park.
struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives one future to completion on the current thread, parking between
/// polls. The minimal bridge from sync code into the async surface:
///
/// ```
/// use vbi_service::{block_on, AsyncFront, ServiceConfig};
/// use vbi_core::{Rwx, VbProperties, VbiConfig};
///
/// # fn main() -> Result<(), vbi_core::VbiError> {
/// let front = AsyncFront::new(ServiceConfig::new(
///     2,
///     VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() },
/// ));
/// let session = front.create_session()?;
/// block_on(async {
///     let vb = session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).await?;
///     session.store_u64(vb.at(0), 7).await?;
///     assert_eq!(session.load_u64(vb.at(0)).await?, 7);
///     Ok(())
/// })
/// # }
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(output) => return output,
            // A wake between poll and park leaves a sticky unpark permit,
            // so this can stall only if nobody ever wakes us — which would
            // be a lost completion, not a park bug.
            Poll::Pending => std::thread::park(),
        }
    }
}

/// Task ids woken but not yet polled, shared between the executor thread
/// (popping) and completion-side wakers (pushing). The mutexed deque
/// stands in for a lock-free array queue; contention is one push per
/// completion. The unpark side is gated on `parked` (Dekker-style with
/// the executor's drain — see [`Executor::run`]), so a busy executor
/// costs wakers one flag load, not a second lock.
#[derive(Debug, Default)]
struct ReadyQueue {
    woken: Mutex<VecDeque<u64>>,
    /// True while the executor is committed to parking; set before its
    /// final empty-check, cleared after waking.
    parked: AtomicBool,
    /// The executor thread to unpark on wake, present while
    /// [`Executor::run`] is live.
    executor: Mutex<Option<std::thread::Thread>>,
}

impl ReadyQueue {
    fn wake(&self, id: u64) {
        unpoison(self.woken.lock()).push_back(id);
        // Push, *then* load (both effectively SeqCst through the lock and
        // the flag): either this sees `parked` and unparks, or the
        // executor's re-check after setting `parked` sees the push.
        if self.parked.load(Ordering::SeqCst) {
            if let Some(thread) = unpoison(self.executor.lock()).as_ref() {
                thread.unpark();
            }
        }
    }
}

/// One task's waker: pushes the task id onto the ready list and unparks
/// the executor. Waking a finished task is a no-op (the pop finds no
/// task), so completions racing task exit are harmless.
struct TaskWaker {
    id: u64,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.wake(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.wake(self.id);
    }
}

struct Task {
    future: Pin<Box<dyn Future<Output = ()>>>,
    /// Cached — one allocation per task, not per poll.
    waker: Waker,
}

/// A single-threaded, multi-task executor: spawn futures, then
/// [`run`](Executor::run) polls whichever the completion wakers mark ready until
/// every task finishes. Tasks need not be `Send` (they never leave this
/// thread); the *wakers* are `Send + Sync` and cross from the shard
/// workers freely. Scale comes from running one executor per OS thread,
/// each multiplexing thousands of sessions.
#[derive(Default)]
pub struct Executor {
    tasks: TagMap<Task>,
    ready: Arc<ReadyQueue>,
    next_id: u64,
}

impl Executor {
    /// An empty executor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task, initially ready. `'static`: tasks outlive the caller's
    /// frame (move sessions into them).
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) {
        let id = self.next_id;
        self.next_id += 1;
        let waker = Waker::from(Arc::new(TaskWaker { id, ready: Arc::clone(&self.ready) }));
        self.tasks.insert(id, Task { future: Box::pin(future), waker });
        unpoison(self.ready.woken.lock()).push_back(id);
    }

    /// Tasks spawned and not yet finished.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.tasks.len()
    }

    /// Runs until every spawned task completes, parking whenever no task
    /// is ready. Duplicate or stale ids on the ready list cause at most a
    /// spurious poll or a skip — never a miss, because a leaf future that
    /// returns `Pending` always has its waker parked somewhere that will
    /// push its id again.
    ///
    /// The ready list is drained a batch at a time (one lock per batch,
    /// not per task), and the park is two-phase: raise `parked`, re-drain,
    /// and only park if still empty — a wake between the drains either
    /// lands in the re-drain or sees the flag and unparks (sticky permit,
    /// so even a wake between the re-drain and the park just makes the
    /// park return immediately).
    pub fn run(&mut self) {
        *unpoison(self.ready.executor.lock()) = Some(std::thread::current());
        let mut batch = VecDeque::new();
        while !self.tasks.is_empty() {
            let Some(id) = batch.pop_front() else {
                // drain-extend, not swap: both deques keep their grown
                // capacity, so the workers' push path never reallocates.
                batch.extend(unpoison(self.ready.woken.lock()).drain(..));
                if batch.is_empty() {
                    self.ready.parked.store(true, Ordering::SeqCst);
                    batch.extend(unpoison(self.ready.woken.lock()).drain(..));
                    if batch.is_empty() {
                        std::thread::park();
                    }
                    self.ready.parked.store(false, Ordering::SeqCst);
                }
                continue;
            };
            let Some(task) = self.tasks.get_mut(&id) else {
                continue; // woken again after finishing
            };
            let mut cx = Context::from_waker(&task.waker);
            if task.future.as_mut().poll(&mut cx).is_ready() {
                self.tasks.remove(&id);
            }
        }
        *unpoison(self.ready.executor.lock()) = None;
        self.ready.parked.store(false, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("tasks", &self.tasks.len())
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use vbi_core::VbiConfig;

    fn front(shards: usize) -> AsyncFront {
        AsyncFront::new(ServiceConfig::new(
            shards,
            VbiConfig { phys_frames: 8192, ..VbiConfig::vbi_full() },
        ))
    }

    #[test]
    fn block_on_drives_an_op_end_to_end() {
        let front = front(2);
        let session = front.create_session().unwrap();
        block_on(async {
            let vb = session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).await.unwrap();
            session.store_u64(vb.at(8), 1234).await.unwrap();
            assert_eq!(session.load_u64(vb.at(8)).await.unwrap(), 1234);
            let bytes = session.load_bytes(vb.at(8), 8).await.unwrap();
            assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 1234);
        });
        assert_eq!(front.outstanding(), 0, "every tag consumed");
        assert_eq!(front.queue().in_flight(), 0);
    }

    #[test]
    fn async_completions_bypass_the_shared_cq() {
        let front = front(2);
        let session = front.create_session().unwrap();
        block_on(async {
            let vb = session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).await.unwrap();
            for i in 0..16 {
                session.store_u64(vb.at(i * 8), i).await.unwrap();
            }
        });
        assert!(front.queue().try_reap().is_none(), "no CQEs pile up for async ops");
        assert!(front.queue().completed() >= 17);
    }

    #[test]
    fn executor_multiplexes_many_sessions() {
        let front = front(2);
        let mut executor = Executor::new();
        let done = Rc::new(Cell::new(0u64));
        for _ in 0..64 {
            let session = front.create_session().unwrap();
            let done = Rc::clone(&done);
            executor.spawn(async move {
                let vb =
                    session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).await.unwrap();
                for i in 0..8u64 {
                    session.store_u64(vb.at(i * 8), i * 7).await.unwrap();
                    assert_eq!(session.load_u64(vb.at(i * 8)).await.unwrap(), i * 7);
                }
                done.set(done.get() + 1);
            });
        }
        executor.run();
        assert_eq!(done.get(), 64);
        assert_eq!(executor.pending(), 0);
        assert_eq!(front.outstanding(), 0);
    }

    #[test]
    fn budget_bounds_in_flight_and_counts_waits() {
        let front = front(1);
        // Budget 1, four tasks sharing the session: three must park.
        let session = front.create_session_with_budget(1).unwrap();
        let vb =
            block_on(session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)).unwrap();
        let mut executor = Executor::new();
        for task in 0..4u64 {
            let session = session.clone();
            executor.spawn(async move {
                for i in 0..32u64 {
                    session.store_u64(vb.at((task * 32 + i) * 8), i).await.unwrap();
                }
            });
        }
        executor.run();
        assert!(front.queue().backpressure_waits() > 0, "contended budget parks submitters");
        assert_eq!(front.outstanding(), 0);
        // request_vb + 128 stores all completed.
        assert_eq!(front.queue().completed(), 129);
    }

    #[test]
    fn errors_resolve_futures_like_values() {
        let front = front(1);
        let session = front.create_session().unwrap();
        let err = block_on(session.load_u64(VirtualAddress::new(40, 0)));
        assert!(err.is_err(), "unmapped CVT index completes with its error");
        assert_eq!(front.outstanding(), 0);
    }

    #[test]
    fn dropped_futures_abandon_cleanly() {
        let front = front(1);
        // Budget 1: if cancellation leaked the permit, the next acquire
        // would park forever and the test would hang.
        let session = front.create_session_with_budget(1).unwrap();
        let vb = block_on(session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE)).unwrap();
        // Poll once (acquires the permit and submits), then drop mid-op:
        // the registry entry is abandoned and the permit released — by the
        // drop if the completion hadn't landed yet, by the consume if it
        // had.
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(session.store_u64(vb.at(0), 9));
        let _ = fut.as_mut().poll(&mut cx);
        drop(fut);
        block_on(async {
            // Same ring, FIFO: the cancelled store's *effect* still lands
            // before these (cancellation abandons the answer, not the op).
            session.store_u64(vb.at(0), 10).await.unwrap();
            assert_eq!(session.load_u64(vb.at(0)).await.unwrap(), 10);
        });
        assert_eq!(front.outstanding(), 0);
        assert_eq!(front.queue().in_flight(), 0);
    }

    #[test]
    fn control_plane_execute_flows_async() {
        let front = front(2);
        let client = block_on(front.execute(Op::CreateClient)).unwrap().as_client().unwrap();
        let session = front.session_for(client, 8);
        block_on(async {
            let vb = session.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).await.unwrap();
            session.store_u64(vb.at(0), 3).await.unwrap();
            let destroyed = front.execute(Op::DestroyClient { client }).await;
            assert!(destroyed.is_ok());
        });
        assert!(!front.service().client_exists(client));
    }

    #[test]
    #[should_panic(expected = "one AsyncFront per VbiQueue")]
    fn second_front_over_one_queue_is_refused() {
        let queue = Arc::new(VbiQueue::new(ServiceConfig::new(
            1,
            VbiConfig { phys_frames: 1024, ..VbiConfig::vbi_full() },
        )));
        let _first = AsyncFront::over(Arc::clone(&queue));
        let _second = AsyncFront::over(queue);
    }
}
