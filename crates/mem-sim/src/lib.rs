//! # vbi-mem-sim — memory-subsystem substrate for the VBI reproduction
//!
//! Models the parts of the machine below the core and above the DIMMs, with
//! the exact structure sizes and timings of the paper's Table 1:
//!
//! * [`cache`] — a set-associative, write-back cache usable as VIVT (fed VBI
//!   addresses) or PIPT (fed physical addresses);
//! * [`hierarchy`] — the L1/L2/LLC stack with dirty-eviction propagation
//!   (dirty LLC evictions are first-class results, because they trigger
//!   delayed allocation under VBI);
//! * [`dram`] — bank + row-buffer models for DDR3-1600, PCM-800, and
//!   TL-DRAM's near/far segments;
//! * [`controller`] — homogeneous, PCM-DRAM hybrid, and TL-DRAM memory
//!   controllers;
//! * [`timing`] — Table 1 latencies in one place.
//!
//! ```
//! use vbi_mem_sim::hierarchy::{CacheHierarchy, HitLevel};
//! use vbi_mem_sim::controller::MemoryController;
//!
//! let mut caches = CacheHierarchy::per_core_default();
//! let mut memory = MemoryController::ddr3_1600();
//!
//! let access = caches.access(0xdead_beef, false);
//! let cycles = access.latency
//!     + if access.level == HitLevel::Memory { memory.service(0xdead_beef) } else { 0 };
//! assert!(cycles > 43);
//! ```

pub mod cache;
pub mod controller;
pub mod dram;
pub mod hierarchy;
pub mod timing;

pub use cache::{Cache, CacheStats, LINE_BYTES};
pub use controller::{HybridMemory, HybridRegion, MemoryController, TlDramController};
pub use dram::{AddressMapping, Device, DeviceStats, RowBufferOutcome, TlDram};
pub use hierarchy::{CacheHierarchy, HierarchyAccess, HitLevel};
pub use timing::{CacheTiming, DeviceTiming};
