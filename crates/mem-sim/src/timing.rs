//! Timing parameters (Table 1 of the paper).
//!
//! All latencies are expressed in CPU cycles unless stated otherwise. DRAM
//! command timings are given in memory-bus cycles and scaled by the
//! bus-to-core clock ratio when charged to an access.

/// Cache hierarchy latencies (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheTiming {
    /// L1 hit latency: 4 cycles.
    pub l1: u64,
    /// L2 hit latency: 8 cycles.
    pub l2: u64,
    /// L3/LLC hit latency: 31 cycles.
    pub llc: u64,
}

impl Default for CacheTiming {
    fn default() -> Self {
        Self { l1: 4, l2: 8, llc: 31 }
    }
}

/// Command timings of a memory device, in memory-bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceTiming {
    /// Row-to-column delay (activate to read).
    pub t_rcd: u64,
    /// Row precharge time.
    pub t_rp: u64,
    /// Activate-to-activate delay between banks (post-activate).
    pub t_rrd_act: u64,
    /// Activate-to-activate delay between banks (post-precharge).
    pub t_rrd_pre: u64,
    /// Column access (CAS) latency.
    pub t_cas: u64,
    /// CPU cycles per memory-bus cycle (4 GHz core over the bus clock).
    pub cpu_per_mem_cycle: u64,
}

impl DeviceTiming {
    /// DDR3-1600 per Table 1 (Micron datasheet \[88\]): tRCD=5, tRP=5,
    /// tRRDact=3, tRRDpre=3 memory cycles; 800 MHz bus under a 4 GHz core.
    pub fn ddr3_1600() -> Self {
        Self { t_rcd: 5, t_rp: 5, t_rrd_act: 3, t_rrd_pre: 3, t_cas: 5, cpu_per_mem_cycle: 5 }
    }

    /// PCM-800 per Table 1 (Lee et al. \[72\]): tRCD=22, tRP=60, tRRDact=2,
    /// tRRDpre=11 memory cycles; 400 MHz bus under a 4 GHz core.
    pub fn pcm_800() -> Self {
        Self { t_rcd: 22, t_rp: 60, t_rrd_act: 2, t_rrd_pre: 11, t_cas: 5, cpu_per_mem_cycle: 10 }
    }

    /// TL-DRAM near segment (Lee et al. \[74\]): the short bitlines of the
    /// near segment cut tRCD by ~56% and tRP by ~76% versus commodity DRAM.
    pub fn tldram_near() -> Self {
        Self { t_rcd: 2, t_rp: 1, t_rrd_act: 3, t_rrd_pre: 3, t_cas: 3, cpu_per_mem_cycle: 5 }
    }

    /// TL-DRAM far segment: slightly worse than commodity DRAM because the
    /// isolation transistor adds resistance on the long bitline.
    pub fn tldram_far() -> Self {
        Self { t_rcd: 6, t_rp: 6, t_rrd_act: 3, t_rrd_pre: 3, t_cas: 5, cpu_per_mem_cycle: 5 }
    }

    /// Latency (in CPU cycles) of a row-buffer hit: CAS only.
    pub fn row_hit_cycles(&self) -> u64 {
        self.t_cas * self.cpu_per_mem_cycle
    }

    /// Latency (in CPU cycles) of a row miss in a closed bank: activate +
    /// CAS.
    pub fn row_closed_cycles(&self) -> u64 {
        (self.t_rcd + self.t_cas) * self.cpu_per_mem_cycle
    }

    /// Latency (in CPU cycles) of a row conflict: precharge + activate +
    /// CAS.
    pub fn row_conflict_cycles(&self) -> u64 {
        (self.t_rp + self.t_rcd + self.t_cas) * self.cpu_per_mem_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cache_latencies() {
        let t = CacheTiming::default();
        assert_eq!((t.l1, t.l2, t.llc), (4, 8, 31));
    }

    #[test]
    fn table1_dram_timings() {
        let d = DeviceTiming::ddr3_1600();
        assert_eq!((d.t_rcd, d.t_rp, d.t_rrd_act, d.t_rrd_pre), (5, 5, 3, 3));
        let p = DeviceTiming::pcm_800();
        assert_eq!((p.t_rcd, p.t_rp, p.t_rrd_act, p.t_rrd_pre), (22, 60, 2, 11));
    }

    #[test]
    fn latency_ordering_is_sane() {
        for d in [
            DeviceTiming::ddr3_1600(),
            DeviceTiming::pcm_800(),
            DeviceTiming::tldram_near(),
            DeviceTiming::tldram_far(),
        ] {
            assert!(d.row_hit_cycles() < d.row_closed_cycles());
            assert!(d.row_closed_cycles() < d.row_conflict_cycles());
        }
    }

    #[test]
    fn pcm_is_slower_than_dram() {
        assert!(
            DeviceTiming::pcm_800().row_conflict_cycles()
                > DeviceTiming::ddr3_1600().row_conflict_cycles() * 3
        );
    }

    #[test]
    fn tldram_near_beats_far() {
        assert!(
            DeviceTiming::tldram_near().row_conflict_cycles()
                < DeviceTiming::tldram_far().row_conflict_cycles()
        );
    }
}
