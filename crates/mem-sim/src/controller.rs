//! Memory controllers: homogeneous and hybrid (PCM-DRAM) back ends.

use crate::dram::{AddressMapping, Device, DeviceStats, TlDram};
use crate::timing::DeviceTiming;

/// A single-device memory controller (the Table 1 configuration: one
/// channel, one rank, eight banks, open-page policy).
#[derive(Debug, Clone)]
pub struct MemoryController {
    device: Device,
    /// Fixed controller overhead per request (queueing, scheduling), in CPU
    /// cycles.
    overhead: u64,
}

impl MemoryController {
    /// Creates a controller over a device with the given timings.
    pub fn new(timing: DeviceTiming) -> Self {
        Self { device: Device::new(timing, AddressMapping::default()), overhead: 10 }
    }

    /// DDR3-1600 controller.
    pub fn ddr3_1600() -> Self {
        Self::new(DeviceTiming::ddr3_1600())
    }

    /// Serves one line request, returning latency in CPU cycles.
    pub fn service(&mut self, addr: u64) -> u64 {
        self.overhead + self.device.access(addr)
    }

    /// Device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// Resets device state and statistics.
    pub fn reset(&mut self) {
        self.device.reset();
    }
}

/// Which technology served a hybrid-memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridRegion {
    /// The small, fast DRAM region.
    Dram,
    /// The large, slow PCM region.
    Pcm,
}

/// A PCM-DRAM hybrid main memory (Ramos et al. \[107\], §7.3): a small DRAM
/// acts as the fast region for hot pages in front of a large PCM.
///
/// The physical address space is split: addresses below `dram_bytes` are
/// DRAM, the rest PCM. Placement/migration policy lives in `vbi-hetero`.
///
/// # Examples
///
/// ```
/// use vbi_mem_sim::controller::{HybridMemory, HybridRegion};
///
/// let mut mem = HybridMemory::new(64 << 20);
/// assert_eq!(mem.region_of(0), HybridRegion::Dram);
/// assert_eq!(mem.region_of(1 << 30), HybridRegion::Pcm);
/// assert!(mem.service(0) < mem.service(1 << 30));
/// ```
#[derive(Debug, Clone)]
pub struct HybridMemory {
    dram: Device,
    pcm: Device,
    dram_bytes: u64,
    overhead: u64,
}

impl HybridMemory {
    /// Creates a hybrid memory whose first `dram_bytes` of the address space
    /// are DRAM.
    pub fn new(dram_bytes: u64) -> Self {
        Self {
            dram: Device::new(DeviceTiming::ddr3_1600(), AddressMapping::default()),
            pcm: Device::new(DeviceTiming::pcm_800(), AddressMapping::default()),
            dram_bytes,
            overhead: 10,
        }
    }

    /// Size of the DRAM (fast) region in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }

    /// The region an address belongs to.
    pub fn region_of(&self, addr: u64) -> HybridRegion {
        if addr < self.dram_bytes {
            HybridRegion::Dram
        } else {
            HybridRegion::Pcm
        }
    }

    /// Serves one line request from the owning region.
    pub fn service(&mut self, addr: u64) -> u64 {
        self.overhead
            + match self.region_of(addr) {
                HybridRegion::Dram => self.dram.access(addr),
                HybridRegion::Pcm => self.pcm.access(addr - self.dram_bytes),
            }
    }

    /// DRAM-region statistics.
    pub fn dram_stats(&self) -> DeviceStats {
        self.dram.stats()
    }

    /// PCM-region statistics.
    pub fn pcm_stats(&self) -> DeviceStats {
        self.pcm.stats()
    }

    /// Resets both devices.
    pub fn reset(&mut self) {
        self.dram.reset();
        self.pcm.reset();
    }
}

/// A TL-DRAM main memory controller (§7.3).
#[derive(Debug, Clone)]
pub struct TlDramController {
    device: TlDram,
    overhead: u64,
}

impl TlDramController {
    /// Creates a controller whose first `near_bytes` of the address space
    /// are the near (fast) segment.
    pub fn new(near_bytes: u64) -> Self {
        Self { device: TlDram::new(near_bytes), overhead: 10 }
    }

    /// Size of the near segment in bytes.
    pub fn near_bytes(&self) -> u64 {
        self.device.near_bytes()
    }

    /// Whether an address is in the near segment.
    pub fn is_near(&self, addr: u64) -> bool {
        self.device.is_near(addr)
    }

    /// Serves one line request.
    pub fn service(&mut self, addr: u64) -> u64 {
        self.overhead + self.device.access(addr)
    }

    /// Underlying device (for statistics).
    pub fn device(&self) -> &TlDram {
        &self.device
    }

    /// Resets the device.
    pub fn reset(&mut self) {
        self.device.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_adds_fixed_overhead() {
        let mut c = MemoryController::ddr3_1600();
        let lat = c.service(0);
        assert_eq!(lat, 10 + DeviceTiming::ddr3_1600().row_closed_cycles());
    }

    #[test]
    fn hybrid_routes_by_region() {
        let mut m = HybridMemory::new(1 << 20);
        m.service(0);
        m.service(2 << 20);
        assert_eq!(m.dram_stats().accesses, 1);
        assert_eq!(m.pcm_stats().accesses, 1);
    }

    #[test]
    fn pcm_region_is_much_slower() {
        let mut m = HybridMemory::new(1 << 20);
        // Compare closed-bank latencies on both sides.
        let dram = m.service(0);
        let pcm = m.service(2 << 20);
        assert!(pcm > dram * 2, "pcm {pcm} vs dram {dram}");
    }

    #[test]
    fn tldram_controller_near_far() {
        let mut t = TlDramController::new(1 << 20);
        let near = t.service(0);
        let far = t.service(4 << 20);
        assert!(near < far);
        assert_eq!(t.device().near_stats().accesses, 1);
        assert_eq!(t.device().far_stats().accesses, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = HybridMemory::new(1 << 20);
        m.service(0);
        m.reset();
        assert_eq!(m.dram_stats().accesses, 0);
    }
}
