//! The three-level on-chip cache hierarchy of Table 1.
//!
//! L1 32 KiB/8-way (4 cy), L2 256 KiB/8-way (8 cy), LLC 2 MiB-per-core/16-way
//! (31 cy), 64 B lines, write-back and write-allocate at every level. Dirty
//! evictions propagate downward; dirty LLC evictions are returned to the
//! caller, because under VBI those are precisely the events that trigger
//! physical memory allocation (§5.1).

use crate::cache::{Cache, CacheStats};
use crate::timing::CacheTiming;

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 hit.
    L1,
    /// L2 hit.
    L2,
    /// Last-level cache hit.
    Llc,
    /// Missed everywhere; must go to memory (through the MTL under VBI).
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Where the line was found.
    pub level: HitLevel,
    /// Cycles spent reaching that level (memory service time excluded).
    pub latency: u64,
    /// Dirty lines evicted from the LLC by this access (line addresses).
    pub llc_writebacks: Vec<u64>,
}

/// A three-level cache hierarchy.
///
/// # Examples
///
/// ```
/// use vbi_mem_sim::hierarchy::{CacheHierarchy, HitLevel};
///
/// let mut caches = CacheHierarchy::per_core_default();
/// let first = caches.access(0x4000, false);
/// assert_eq!(first.level, HitLevel::Memory);
/// let second = caches.access(0x4000, false);
/// assert_eq!(second.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    timing: CacheTiming,
}

impl CacheHierarchy {
    /// Builds a hierarchy with explicit cache geometries.
    pub fn new(l1: Cache, l2: Cache, llc: Cache, timing: CacheTiming) -> Self {
        Self { l1, l2, llc, timing }
    }

    /// The paper's per-core configuration: 32 KiB/8w L1, 256 KiB/8w L2,
    /// 2 MiB/16w LLC slice.
    pub fn per_core_default() -> Self {
        Self::new(
            Cache::new(32 << 10, 8),
            Cache::new(256 << 10, 8),
            Cache::new(2 << 20, 16),
            CacheTiming::default(),
        )
    }

    /// Accesses the hierarchy. Fills every level on the way back (inclusive
    /// allocation) and propagates dirty evictions downward.
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        let mut llc_writebacks = Vec::new();
        let t = self.timing;

        let l1 = self.l1.access(addr, write);
        if let Some(victim) = l1.writeback {
            // L1 dirty eviction lands in L2.
            let wb = self.l2.access(victim, true);
            if let Some(victim2) = wb.writeback {
                let wb2 = self.llc.access(victim2, true);
                if let Some(out) = wb2.writeback {
                    llc_writebacks.push(out);
                }
            }
        }
        if l1.hit {
            return HierarchyAccess { level: HitLevel::L1, latency: t.l1, llc_writebacks };
        }

        let l2 = self.l2.access(addr, write);
        if let Some(victim) = l2.writeback {
            let wb = self.llc.access(victim, true);
            if let Some(out) = wb.writeback {
                llc_writebacks.push(out);
            }
        }
        if l2.hit {
            return HierarchyAccess { level: HitLevel::L2, latency: t.l1 + t.l2, llc_writebacks };
        }

        let llc = self.llc.access(addr, write);
        if let Some(out) = llc.writeback {
            llc_writebacks.push(out);
        }
        if llc.hit {
            return HierarchyAccess {
                level: HitLevel::Llc,
                latency: t.l1 + t.l2 + t.llc,
                llc_writebacks,
            };
        }
        HierarchyAccess { level: HitLevel::Memory, latency: t.l1 + t.l2 + t.llc, llc_writebacks }
    }

    /// Invalidates every line matching `predicate` at all levels, returning
    /// dirty line addresses (disable_vb's lazy cache cleanup, §4.2.4).
    pub fn invalidate_matching(&mut self, mut predicate: impl FnMut(u64) -> bool) -> Vec<u64> {
        let mut dirty = self.l1.invalidate_matching(&mut predicate);
        dirty.extend(self.l2.invalidate_matching(&mut predicate));
        dirty.extend(self.llc.invalidate_matching(&mut predicate));
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Per-level statistics `(l1, l2, llc)`.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.llc.stats())
    }

    /// Resets statistics at every level.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_fill_inclusively() {
        let mut h = CacheHierarchy::per_core_default();
        assert_eq!(h.access(0, false).level, HitLevel::Memory);
        assert_eq!(h.access(0, false).level, HitLevel::L1);
    }

    #[test]
    fn latencies_accumulate_per_level() {
        let mut h = CacheHierarchy::per_core_default();
        assert_eq!(h.access(0, false).latency, 43); // 4 + 8 + 31 to miss
        assert_eq!(h.access(0, false).latency, 4);
        // Evict 0 from L1 only: walk more lines than L1 ways in its set.
        for i in 1..=8 {
            h.access(i << 12, false); // same L1 set (32 KiB / 8w = 4 KiB sets)
        }
        let back = h.access(0, false);
        assert!(matches!(back.level, HitLevel::L2 | HitLevel::Llc));
        assert!(back.latency > 4);
    }

    #[test]
    fn dirty_llc_evictions_surface() {
        // Tiny hierarchy so evictions are easy to force.
        let mut h = CacheHierarchy::new(
            Cache::new(128, 1),
            Cache::new(256, 1),
            Cache::new(512, 1),
            CacheTiming::default(),
        );
        h.access(0, true);
        // Conflict 0 out of every level: LLC has 8 sets, so line 512*k maps
        // to set 0 of the LLC.
        let mut writebacks = Vec::new();
        for k in 1..=4 {
            writebacks.extend(h.access(k * 512, true).llc_writebacks);
        }
        assert!(writebacks.contains(&0), "dirty line 0 must eventually leave the LLC");
    }

    #[test]
    fn invalidate_matching_cleans_all_levels() {
        let mut h = CacheHierarchy::per_core_default();
        h.access(0x1000, true);
        h.access(0x2000, false);
        let dirty = h.invalidate_matching(|a| a < 0x2000);
        assert_eq!(dirty, vec![0x1000]);
        assert_eq!(h.access(0x1000, false).level, HitLevel::Memory);
    }

    #[test]
    fn write_read_sequence_stays_cached() {
        let mut h = CacheHierarchy::per_core_default();
        h.access(0x40, true);
        for _ in 0..100 {
            assert_eq!(h.access(0x40, false).level, HitLevel::L1);
        }
        let (l1, _, _) = h.stats();
        assert_eq!(l1.hits, 100);
    }
}
