//! A set-associative, write-back, write-allocate cache model.
//!
//! The cache is address-space agnostic: feed it VBI addresses and it behaves
//! as a virtually indexed, virtually tagged cache (legal under VBI because
//! VBI addresses are system-wide unique, §3.5); feed it physical addresses
//! and it behaves as the conventional PIPT cache of the baselines.

/// Cache line size in bytes (64 B throughout the paper's configuration).
pub const LINE_BYTES: u64 = 64;

/// Statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0.0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address (not tag) of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use vbi_mem_sim::cache::Cache;
///
/// let mut l1 = Cache::new(32 << 10, 8); // 32 KiB, 8-way (Table 1 L1)
/// assert!(!l1.access(0x1000, false).hit); // cold miss
/// assert!(l1.access(0x1000, false).hit);  // now resident
/// assert!(l1.access(0x1004, false).hit);  // same 64 B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    set_bits: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_bytes / (64 * ways)` is a nonzero power of
    /// two.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        let lines = capacity_bytes / LINE_BYTES;
        let set_count = lines / ways as u64;
        assert!(
            set_count > 0 && set_count.is_power_of_two(),
            "cache geometry must give a power-of-two set count"
        );
        Self {
            sets: (0..set_count).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_bits: set_count.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets.len() as u64 * self.ways as u64 * LINE_BYTES
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / LINE_BYTES;
        let set = (line & ((1 << self.set_bits) - 1)) as usize;
        let tag = line >> self.set_bits;
        (set, tag)
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        ((tag << self.set_bits) | set as u64) * LINE_BYTES
    }

    /// Accesses `addr`; on a miss the line is allocated (write-allocate) and
    /// the LRU victim evicted. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.split(addr);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return CacheAccess { hit: true, writeback: None };
        }
        self.stats.misses += 1;

        if set.len() < ways {
            set.push(Line { tag, dirty: write, lru: tick });
            return CacheAccess { hit: false, writeback: None };
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let victim =
            core::mem::replace(&mut set[victim_idx], Line { tag, dirty: write, lru: tick });
        let writeback = if victim.dirty {
            self.stats.dirty_evictions += 1;
            Some(self.line_addr(set_idx, victim.tag))
        } else {
            None
        };
        CacheAccess { hit: false, writeback }
    }

    /// Looks up `addr` without allocating on miss (probe).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.split(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Invalidates one line, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set, tag) = self.split(addr);
        let pos = self.sets[set].iter().position(|l| l.tag == tag)?;
        Some(self.sets[set].swap_remove(pos).dirty)
    }

    /// Invalidates every line whose address satisfies `predicate` (e.g. all
    /// lines of a disabled VB). Returns the dirty line addresses dropped.
    pub fn invalidate_matching(&mut self, mut predicate: impl FnMut(u64) -> bool) -> Vec<u64> {
        let mut dirty = Vec::new();
        let set_bits = self.set_bits;
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            set.retain(|l| {
                let addr = ((l.tag << set_bits) | set_idx as u64) * LINE_BYTES;
                if predicate(addr) {
                    if l.dirty {
                        dirty.push(addr);
                    }
                    false
                } else {
                    true
                }
            });
        }
        dirty
    }

    /// Drops every line (returns dirty line addresses).
    pub fn flush(&mut self) -> Vec<u64> {
        self.invalidate_matching(|_| true)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics without flushing contents (warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_table1() {
        let l1 = Cache::new(32 << 10, 8);
        assert_eq!(l1.capacity_bytes(), 32 << 10);
        let l2 = Cache::new(256 << 10, 8);
        assert_eq!(l2.capacity_bytes(), 256 << 10);
        let llc = Cache::new(8 << 20, 16);
        assert_eq!(llc.capacity_bytes(), 8 << 20);
    }

    #[test]
    fn hit_after_miss_same_line() {
        let mut c = Cache::new(4 << 10, 4);
        assert!(!c.access(100, false).hit);
        assert!(c.access(100, false).hit);
        assert!(c.access(127, false).hit, "same 64 B line");
        assert!(!c.access(128, false).hit, "next line");
    }

    #[test]
    fn dirty_eviction_reports_the_victim_address() {
        // 2 sets, 1 way: addresses 0 and 128 conflict (same set 0).
        let mut c = Cache::new(128, 1);
        c.access(0, true);
        let access = c.access(128, false);
        assert!(!access.hit);
        assert_eq!(access.writeback, Some(0));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(128, 1);
        c.access(0, false);
        assert_eq!(c.access(128, false).writeback, None);
    }

    #[test]
    fn lru_within_a_set() {
        // 1 set, 2 ways: 0, 64, 128 all map to set 0.
        let mut c = Cache::new(128, 2);
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // 64 becomes LRU
        c.access(128, false); // evicts 64
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn write_hit_marks_dirty_for_later_eviction() {
        let mut c = Cache::new(128, 1);
        c.access(0, false);
        c.access(0, true); // hit, dirtied
        let access = c.access(128, false);
        assert_eq!(access.writeback, Some(0));
    }

    #[test]
    fn invalidate_matching_selects_by_address() {
        let mut c = Cache::new(4 << 10, 4);
        c.access(0x0000, true);
        c.access(0x8000, true);
        c.access(0x8040, false);
        let dirty = c.invalidate_matching(|addr| addr >= 0x8000);
        assert_eq!(dirty, vec![0x8000]);
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x8040));
    }

    #[test]
    fn flush_returns_all_dirty_lines() {
        let mut c = Cache::new(4 << 10, 4);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 128]);
        assert!(!c.probe(0));
    }

    #[test]
    fn stats_track_rates() {
        let mut c = Cache::new(4 << 10, 4);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(192, 1); // three sets: not a power of two
    }
}
