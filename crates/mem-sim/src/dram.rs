//! Bank and row-buffer model for DRAM, PCM, and TL-DRAM devices.
//!
//! Models the memory-device half of Table 1: one channel, one rank, eight
//! banks, open-page policy. Each bank remembers its open row; an access is a
//! row hit (CAS only), a closed-bank activate (tRCD + CAS), or a row
//! conflict (tRP + tRCD + CAS). TL-DRAM devices additionally split each
//! subarray into a near and a far segment with different timings (§7.3).

use crate::timing::DeviceTiming;

/// Physical-address interleaving across banks and rows.
///
/// Row size 8 KiB (open-page row buffer), banks interleaved on row-sized
/// blocks so sequential streams hit the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    /// Number of banks (8 per Table 1).
    pub banks: usize,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u64,
}

impl Default for AddressMapping {
    fn default() -> Self {
        Self { banks: 8, row_bytes: 8 << 10 }
    }
}

impl AddressMapping {
    /// Decomposes a physical address into `(bank, row)`.
    ///
    /// Banks are selected with permutation-based (XOR) interleaving — the
    /// bank index is XORed with low row bits — so that power-of-two-aligned
    /// regions (e.g. the MTL's 128 MiB reservations) do not all collapse
    /// into one bank.
    pub fn decode(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.row_bytes;
        let row = block / self.banks as u64;
        // Fold several row-bit groups into the bank index so that any
        // power-of-two stride still spreads across banks.
        let fold = row ^ (row >> 3) ^ (row >> 6) ^ (row >> 9) ^ (row >> 12);
        let bank = (block ^ fold) % self.banks as u64;
        (bank as usize, row)
    }
}

/// Row-buffer outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank was idle (no open row).
    Closed,
    /// Another row was open and had to be precharged.
    Conflict,
}

/// Per-device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row conflicts (precharge required).
    pub row_conflicts: u64,
    /// Total CPU cycles of service latency accumulated.
    pub busy_cycles: u64,
}

impl DeviceStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

/// One memory device: a set of banks with open-row state.
///
/// # Examples
///
/// ```
/// use vbi_mem_sim::dram::{Device, AddressMapping};
/// use vbi_mem_sim::timing::DeviceTiming;
///
/// let mut dram = Device::new(DeviceTiming::ddr3_1600(), AddressMapping::default());
/// let first = dram.access(0);          // closed bank: activate + CAS
/// let second = dram.access(64);        // same row: CAS only
/// assert!(second < first);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    timing: DeviceTiming,
    mapping: AddressMapping,
    open_rows: Vec<Option<u64>>,
    stats: DeviceStats,
}

impl Device {
    /// Creates a device with every bank idle.
    pub fn new(timing: DeviceTiming, mapping: AddressMapping) -> Self {
        Self {
            timing,
            mapping,
            open_rows: vec![None; mapping.banks],
            stats: DeviceStats::default(),
        }
    }

    /// The device's command timings.
    pub fn timing(&self) -> DeviceTiming {
        self.timing
    }

    /// Classifies an access without serving it.
    pub fn probe(&self, addr: u64) -> RowBufferOutcome {
        let (bank, row) = self.mapping.decode(addr);
        match self.open_rows[bank] {
            Some(open) if open == row => RowBufferOutcome::Hit,
            Some(_) => RowBufferOutcome::Conflict,
            None => RowBufferOutcome::Closed,
        }
    }

    /// Serves an access, updating bank state, and returns its latency in CPU
    /// cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        let (bank, row) = self.mapping.decode(addr);
        let outcome = match self.open_rows[bank] {
            Some(open) if open == row => RowBufferOutcome::Hit,
            Some(_) => RowBufferOutcome::Conflict,
            None => RowBufferOutcome::Closed,
        };
        self.open_rows[bank] = Some(row); // open-page policy keeps it open
        let cycles = match outcome {
            RowBufferOutcome::Hit => {
                self.stats.row_hits += 1;
                self.timing.row_hit_cycles()
            }
            RowBufferOutcome::Closed => self.timing.row_closed_cycles(),
            RowBufferOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                self.timing.row_conflict_cycles()
            }
        };
        self.stats.accesses += 1;
        self.stats.busy_cycles += cycles;
        cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets statistics and closes all rows (warm-up boundary).
    pub fn reset(&mut self) {
        self.stats = DeviceStats::default();
        self.open_rows.fill(None);
    }
}

/// A TL-DRAM device: each bank's rows are split between a low-latency near
/// segment and a larger far segment (Lee et al. \[74\]).
///
/// The boundary is expressed as a fraction of the physical address space:
/// addresses below `near_bytes` live in the near segment.
#[derive(Debug, Clone)]
pub struct TlDram {
    near: Device,
    far: Device,
    near_bytes: u64,
}

impl TlDram {
    /// Creates a TL-DRAM with the first `near_bytes` of the address space in
    /// the near segment.
    pub fn new(near_bytes: u64) -> Self {
        Self {
            near: Device::new(DeviceTiming::tldram_near(), AddressMapping::default()),
            far: Device::new(DeviceTiming::tldram_far(), AddressMapping::default()),
            near_bytes,
        }
    }

    /// Size of the near segment in bytes.
    pub fn near_bytes(&self) -> u64 {
        self.near_bytes
    }

    /// Whether an address falls in the near (fast) segment.
    pub fn is_near(&self, addr: u64) -> bool {
        addr < self.near_bytes
    }

    /// Serves an access from the segment owning `addr`.
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.is_near(addr) {
            self.near.access(addr)
        } else {
            self.far.access(addr - self.near_bytes)
        }
    }

    /// Near-segment statistics.
    pub fn near_stats(&self) -> DeviceStats {
        self.near.stats()
    }

    /// Far-segment statistics.
    pub fn far_stats(&self) -> DeviceStats {
        self.far.stats()
    }

    /// Resets both segments.
    pub fn reset(&mut self) {
        self.near.reset();
        self.far.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Device {
        Device::new(DeviceTiming::ddr3_1600(), AddressMapping::default())
    }

    #[test]
    fn address_mapping_interleaves_banks() {
        let m = AddressMapping::default();
        assert_eq!(m.decode(0), (0, 0));
        assert_eq!(m.decode(8 << 10), (1, 0));
        // Same bank index, next row: the XOR permutation shifts the bank.
        assert_eq!(m.decode(8 * (8 << 10)), (1, 1));
        // Power-of-two-aligned strides do not collapse into one bank.
        let banks: std::collections::HashSet<usize> =
            (0..8u64).map(|i| m.decode(i * (128 << 20)).0).collect();
        assert!(banks.len() > 1);
    }

    #[test]
    fn row_hit_closed_conflict_latencies() {
        let mut d = dram();
        let mapping = AddressMapping::default();
        let closed = d.access(0);
        assert_eq!(closed, d.timing().row_closed_cycles());
        let hit = d.access(4096);
        assert_eq!(hit, d.timing().row_hit_cycles());
        // Find an address in the same bank as address 0 but a different row.
        let (bank0, row0) = mapping.decode(0);
        let conflict_addr = (1..1000u64)
            .map(|i| i * (8 << 10))
            .find(|&a| {
                let (b, r) = mapping.decode(a);
                b == bank0 && r != row0
            })
            .expect("some address conflicts with row 0");
        let conflict = d.access(conflict_addr);
        assert_eq!(conflict, d.timing().row_conflict_cycles());
        assert_eq!(d.stats().accesses, 3);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn sequential_streams_enjoy_row_hits() {
        let mut d = dram();
        for addr in (0..(8 << 10)).step_by(64) {
            d.access(addr);
        }
        // One activate, 127 row hits.
        assert!(d.stats().row_hit_rate() > 0.99 - 1.0 / 128.0);
    }

    #[test]
    fn random_accesses_conflict_often() {
        let mut d = dram();
        let mut addr = 12345u64;
        for _ in 0..1000 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            d.access(addr % (1 << 30));
        }
        assert!(d.stats().row_hit_rate() < 0.1);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut d = dram();
        d.access(0);
        assert_eq!(d.probe(64), RowBufferOutcome::Hit);
        assert_eq!(d.probe(64), RowBufferOutcome::Hit);
        assert_eq!(d.stats().accesses, 1);
    }

    #[test]
    fn tldram_near_is_faster() {
        let mut t = TlDram::new(1 << 20);
        let near = t.access(0);
        let far = t.access(2 << 20);
        assert!(near < far);
        assert!(t.is_near(0));
        assert!(!t.is_near(2 << 20));
        assert_eq!(t.near_stats().accesses, 1);
        assert_eq!(t.far_stats().accesses, 1);
    }

    #[test]
    fn reset_clears_rows_and_stats() {
        let mut d = dram();
        d.access(0);
        d.reset();
        assert_eq!(d.stats().accesses, 0);
        assert_eq!(d.probe(0), RowBufferOutcome::Closed);
    }
}
