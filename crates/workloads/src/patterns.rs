//! Access-pattern generators.
//!
//! Each simulated data structure (one VB under VBI, one virtual region under
//! the baselines) is driven by one of these patterns. The patterns are the
//! first-order determinants of translation overhead: spatial locality sets
//! the TLB and row-buffer hit rates, and footprint sets TLB reach pressure.

use rand::rngs::SmallRng;
use rand::Rng;

/// How offsets within a region are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential streaming with the given stride in bytes (high spatial
    /// locality: row-buffer and TLB friendly).
    Sequential {
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Fixed large stride (touches many pages quickly; TLB hostile when the
    /// stride exceeds a page).
    Strided {
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Uniformly random offsets over the whole region (worst-case locality).
    RandomUniform,
    /// Hot/cold skew: a `hot_fraction` of the region receives
    /// `hot_probability` of the accesses — the working-set structure that
    /// hotness-aware placement (§7.3) exploits.
    HotCold {
        /// Fraction of the region that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability that an access goes to the hot fraction.
        hot_probability: f64,
    },
    /// Dependent pointer chasing: uniformly random like `RandomUniform`, but
    /// semantically serialized (the engine applies no memory-level
    /// parallelism to these accesses).
    PointerChase,
    /// A *sparse* hot set: one cache line per page across `hot_pages` pages
    /// receives `hot_probability` of the accesses; the rest are uniform over
    /// the region. This is the mcf signature — a working set small enough to
    /// live in the LLC yet spread over so many pages that TLB reach is
    /// hopeless — and it is what makes translation overhead dominate
    /// conventional systems. Accesses are serially dependent (pointer
    /// chasing).
    SparseHot {
        /// Number of pages carrying one hot line each.
        hot_pages: u64,
        /// Probability that an access goes to the sparse hot set.
        hot_probability: f64,
    },
}

impl Pattern {
    /// Whether consecutive accesses are serially dependent.
    pub fn is_dependent(&self) -> bool {
        matches!(self, Pattern::PointerChase | Pattern::SparseHot { .. })
    }

    /// Generates the next offset within a region of `bytes` bytes, given
    /// the previous offset. `salt` identifies the region so that identical
    /// patterns in sibling regions produce decorrelated layouts (real data
    /// structures do not alias line-for-line).
    pub fn next_offset(&self, rng: &mut SmallRng, bytes: u64, previous: u64, salt: u64) -> u64 {
        debug_assert!(bytes > 0);
        match *self {
            Pattern::Sequential { stride } | Pattern::Strided { stride } => {
                (previous + stride) % bytes
            }
            Pattern::RandomUniform | Pattern::PointerChase => rng.gen_range(0..bytes) & !7,
            Pattern::SparseHot { hot_pages, hot_probability } => {
                let pages_in_region = (bytes >> 12).max(1);
                let hot_pages = hot_pages.min(pages_in_region);
                if rng.gen_bool(hot_probability) {
                    // Each hot index k maps to a stable, pseudo-random page
                    // and line: hot nodes are scattered through the
                    // structure with no alignment that a set index could
                    // resonate with, and the salt decorrelates sibling
                    // regions.
                    let k = rng.gen_range(0..hot_pages);
                    let h = (k + 1)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(salt.wrapping_mul(0xd1b5_4a32_d192_ed03));
                    let page = h % pages_in_region;
                    let line = (h >> 32) % 64 * 64;
                    page * 4096 + line
                } else {
                    rng.gen_range(0..bytes) & !7
                }
            }
            Pattern::HotCold { hot_fraction, hot_probability } => {
                let hot_bytes = ((bytes as f64 * hot_fraction) as u64).max(8);
                if rng.gen_bool(hot_probability) {
                    rng.gen_range(0..hot_bytes) & !7
                } else if hot_bytes < bytes {
                    (hot_bytes + rng.gen_range(0..(bytes - hot_bytes))) & !7
                } else {
                    rng.gen_range(0..bytes) & !7
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn sequential_wraps_at_region_end() {
        let p = Pattern::Sequential { stride: 64 };
        let mut r = rng();
        assert_eq!(p.next_offset(&mut r, 256, 0, 0), 64);
        assert_eq!(p.next_offset(&mut r, 256, 192, 0), 0);
    }

    #[test]
    fn random_offsets_stay_in_bounds_and_aligned() {
        let p = Pattern::RandomUniform;
        let mut r = rng();
        for _ in 0..1000 {
            let o = p.next_offset(&mut r, 4096, 0, 0);
            assert!(o < 4096);
            assert_eq!(o % 8, 0);
        }
    }

    #[test]
    fn hot_cold_skews_toward_the_hot_fraction() {
        let p = Pattern::HotCold { hot_fraction: 0.1, hot_probability: 0.9 };
        let mut r = rng();
        let bytes = 1 << 20;
        let hot_limit = bytes / 10;
        let hits = (0..10_000).filter(|_| p.next_offset(&mut r, bytes, 0, 0) < hot_limit).count();
        assert!(hits > 8_500, "{hits} of 10000 in the hot region");
    }

    #[test]
    fn determinism_per_seed() {
        let p = Pattern::RandomUniform;
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(p.next_offset(&mut a, 1 << 20, 0, 0), p.next_offset(&mut b, 1 << 20, 0, 0));
        }
    }

    #[test]
    fn only_pointer_chase_is_dependent() {
        assert!(Pattern::PointerChase.is_dependent());
        assert!(!Pattern::RandomUniform.is_dependent());
        assert!(!Pattern::Sequential { stride: 64 }.is_dependent());
    }
}
