//! Trace records and the seeded trace generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::patterns::Pattern;

/// One simulated data structure (a VB under VBI; a contiguous virtual
/// region under the baselines).
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Diagnostic name ("grid", "heap", ...).
    pub name: &'static str,
    /// Region size in bytes.
    pub bytes: u64,
    /// Offset-generation pattern.
    pub pattern: Pattern,
    /// Fraction of accesses to this region that are writes.
    pub write_fraction: f64,
    /// Relative probability of an access landing in this region.
    pub weight: f64,
    /// Fraction of the region's pages written during the pre-measurement
    /// initialization phase. Fully initialized data (`1.0`) never benefits
    /// from delayed allocation's zero-line path; freshly allocated, sparsely
    /// constructed structures (mcf's network mid-build, chess transposition
    /// tables, GemsFDTD's per-timestep grids) are the cases where VBI-2's
    /// optimization fires, exactly as in the paper's traced regions.
    pub init_fraction: f64,
}

impl RegionSpec {
    /// Overrides the initialization fraction (constructor default is fully
    /// initialized).
    pub fn with_init(mut self, init_fraction: f64) -> Self {
        self.init_fraction = init_fraction;
        self
    }
}

/// One record of a memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Which region (index into the workload's region list).
    pub region: usize,
    /// Byte offset within the region.
    pub offset: u64,
    /// Whether this is a store.
    pub is_write: bool,
    /// Non-memory instructions executed since the previous access.
    pub gap: u32,
    /// Whether the access serially depends on the previous one (pointer
    /// chasing): the engine must not overlap its latency.
    pub dependent: bool,
}

/// A complete workload description: regions plus instruction-mix parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// The data structures the program allocates.
    pub regions: Vec<RegionSpec>,
    /// Mean non-memory instructions between memory accesses.
    pub mean_gap: u32,
    /// Memory-level parallelism for independent accesses: how many misses
    /// the 128-entry ROB typically overlaps (1.0 = fully serialized).
    pub mlp: f64,
}

impl WorkloadSpec {
    /// Total footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Number of regions (== VBs the program requests under VBI).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Creates the deterministic access-trace generator for this workload.
    pub fn trace(&self, seed: u64) -> TraceGenerator<'_> {
        TraceGenerator::new(self, seed)
    }
}

/// Deterministic, seeded generator of [`Access`] records.
///
/// # Examples
///
/// ```
/// use vbi_workloads::spec::benchmark;
///
/// let spec = benchmark("mcf").expect("known benchmark");
/// let accesses: Vec<_> = spec.trace(1).take(100).collect();
/// assert_eq!(accesses.len(), 100);
/// // Traces are reproducible.
/// let again: Vec<_> = spec.trace(1).take(100).collect();
/// assert_eq!(accesses, again);
/// ```
#[derive(Debug)]
pub struct TraceGenerator<'a> {
    spec: &'a WorkloadSpec,
    rng: SmallRng,
    /// Last offset per region (for sequential/strided patterns).
    cursors: Vec<u64>,
    /// Cumulative region weights for sampling.
    cumulative: Vec<f64>,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator with the given seed.
    pub fn new(spec: &'a WorkloadSpec, seed: u64) -> Self {
        let total: f64 = spec.regions.iter().map(|r| r.weight).sum();
        let mut acc = 0.0;
        let cumulative = spec
            .regions
            .iter()
            .map(|r| {
                acc += r.weight / total;
                acc
            })
            .collect();
        Self {
            spec,
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_0000),
            cursors: vec![0; spec.regions.len()],
            cumulative,
        }
    }
}

impl Iterator for TraceGenerator<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let pick: f64 = self.rng.gen();
        let region =
            self.cumulative.iter().position(|&c| pick <= c).unwrap_or(self.spec.regions.len() - 1);
        let r = &self.spec.regions[region];
        let offset =
            r.pattern.next_offset(&mut self.rng, r.bytes, self.cursors[region], region as u64);
        self.cursors[region] = offset;
        let is_write = self.rng.gen_bool(r.write_fraction);
        let mean = self.spec.mean_gap.max(1);
        let gap = self.rng.gen_range(1..=2 * mean);
        Some(Access { region, offset, is_write, gap, dependent: r.pattern.is_dependent() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy",
            regions: vec![
                RegionSpec {
                    name: "stream",
                    bytes: 1 << 20,
                    pattern: Pattern::Sequential { stride: 64 },
                    write_fraction: 0.0,
                    weight: 3.0,
                    init_fraction: 1.0,
                },
                RegionSpec {
                    name: "heap",
                    bytes: 1 << 16,
                    pattern: Pattern::RandomUniform,
                    write_fraction: 1.0,
                    weight: 1.0,
                    init_fraction: 1.0,
                },
            ],
            mean_gap: 4,
            mlp: 4.0,
        }
    }

    #[test]
    fn footprint_and_counts() {
        let s = spec();
        assert_eq!(s.footprint(), (1 << 20) + (1 << 16));
        assert_eq!(s.region_count(), 2);
    }

    #[test]
    fn weights_bias_region_selection() {
        let s = spec();
        let n = 10_000;
        let to_stream = s.trace(3).take(n).filter(|a| a.region == 0).count();
        let frac = to_stream as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "stream fraction {frac}");
    }

    #[test]
    fn write_fractions_apply_per_region() {
        let s = spec();
        for a in s.trace(4).take(1000) {
            match a.region {
                0 => assert!(!a.is_write),
                1 => assert!(a.is_write),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn offsets_respect_region_bounds() {
        let s = spec();
        for a in s.trace(5).take(5000) {
            assert!(a.offset < s.regions[a.region].bytes);
        }
    }

    #[test]
    fn gaps_are_positive_and_bounded() {
        let s = spec();
        for a in s.trace(6).take(1000) {
            assert!(a.gap >= 1 && a.gap <= 8);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec();
        let a: Vec<_> = s.trace(1).take(50).collect();
        let b: Vec<_> = s.trace(2).take(50).collect();
        assert_ne!(a, b);
    }
}
