//! Multiprogrammed workload bundles (Table 2).

use crate::spec::benchmark;
use crate::trace::WorkloadSpec;

/// The six quad-core bundles of Table 2.
pub const BUNDLES: [(&str, [&str; 4]); 6] = [
    ("wl1", ["deepsjeng-17", "omnetpp-17", "bwaves-17", "lbm-17"]),
    ("wl2", ["Graph 500", "astar", "img-dnn", "moses"]),
    ("wl3", ["mcf", "GemsFDTD", "astar", "milc"]),
    ("wl4", ["milc", "namd", "GemsFDTD", "bzip2"]),
    ("wl5", ["bzip2", "GemsFDTD", "sjeng", "mcf"]),
    ("wl6", ["namd", "bzip2", "astar", "sjeng"]),
];

/// Resolves a bundle name ("wl1".."wl6") to its four workload specs.
pub fn bundle(name: &str) -> Option<Vec<WorkloadSpec>> {
    let (_, apps) = BUNDLES.iter().find(|(n, _)| *n == name)?;
    Some(apps.iter().map(|a| benchmark(a).expect("bundles use known benchmarks")).collect())
}

/// All bundle names in order.
pub fn bundle_names() -> Vec<&'static str> {
    BUNDLES.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bundles_resolve_to_four_apps() {
        for name in bundle_names() {
            let apps = bundle(name).unwrap();
            assert_eq!(apps.len(), 4, "{name}");
        }
    }

    #[test]
    fn table2_contents() {
        let wl5 = bundle("wl5").unwrap();
        let names: Vec<&str> = wl5.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["bzip2", "GemsFDTD", "sjeng", "mcf"]);
    }

    #[test]
    fn unknown_bundle_is_none() {
        assert!(bundle("wl7").is_none());
    }
}
