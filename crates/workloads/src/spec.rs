//! Synthetic profiles for the paper's benchmarks (§7.1).
//!
//! The paper traces SimPoint regions of SPEC CPU 2006/2017, TailBench, and
//! Graph 500 with Pin. Those traces are not redistributable, so each
//! benchmark is modelled by a seeded synthetic generator reproducing its
//! first-order memory behaviour — footprint, number of allocated data
//! structures (= VBs), access patterns, write fraction, and memory-level
//! parallelism — which are what determine relative translation overhead.
//! The characterizations follow the workloads' well-documented behaviour
//! (e.g. mcf = pointer chasing over a GB-scale graph with an extreme TLB
//! miss rate; GemsFDTD = 195 allocations of 3D grids; lbm = streaming).
//!
//! Footprints are scaled to a 4 GiB simulated machine; the *ratios* between
//! footprint and TLB reach (2 MiB for the 4 KiB-page hierarchy of Table 1)
//! preserve each benchmark's TLB-pressure class.

use crate::patterns::Pattern;
use crate::trace::{RegionSpec, WorkloadSpec};

const MB: u64 = 1 << 20;

fn region(
    name: &'static str,
    bytes: u64,
    pattern: Pattern,
    write_fraction: f64,
    weight: f64,
) -> RegionSpec {
    RegionSpec { name, bytes, pattern, write_fraction, weight, init_fraction: 1.0 }
}

/// A large logical structure allocated as `parts` separate chunks (as real
/// programs allocate per-bank/per-column arrays), with access weight decaying
/// geometrically by `skew` across chunks: `skew = 1.0` spreads accesses
/// evenly; smaller values concentrate them in the first chunks (a hot core).
fn banked(
    name: &'static str,
    total_bytes: u64,
    parts: usize,
    pattern: Pattern,
    write_fraction: f64,
    total_weight: f64,
    skew: f64,
) -> Vec<RegionSpec> {
    let bytes = total_bytes / parts as u64;
    let raw: Vec<f64> = (0..parts).map(|i| skew.powi(i as i32)).collect();
    let norm: f64 = raw.iter().sum();
    raw.into_iter()
        .map(|w| region(name, bytes, pattern, write_fraction, total_weight * w / norm))
        .collect()
}

/// The benchmarks of Figure 6 (address translation, 4 KiB pages).
pub const FIG6_BENCHMARKS: [&str; 14] = [
    "astar",
    "bzip2",
    "GemsFDTD",
    "mcf",
    "milc",
    "namd",
    "sjeng",
    "bwaves-17",
    "deepsjeng-17",
    "lbm-17",
    "omnetpp-17",
    "img-dnn",
    "moses",
    "Graph 500",
];

/// The subset shown in Figure 7 (large pages); averages still use all of
/// [`FIG6_BENCHMARKS`].
pub const FIG7_BENCHMARKS: [&str; 8] =
    ["bzip2", "GemsFDTD", "mcf", "milc", "deepsjeng-17", "lbm-17", "img-dnn", "Graph 500"];

/// The benchmarks of Figures 9 and 10 (heterogeneous memory).
pub const HETERO_BENCHMARKS: [&str; 15] = [
    "astar",
    "bzip2",
    "GemsFDTD",
    "hmmer",
    "mcf",
    "milc",
    "soplex",
    "sphinx3",
    "bwaves-17",
    "lbm-17",
    "omnetpp-17",
    "xalancbmk-17",
    "img-dnn",
    "moses",
    "Graph 500",
];

/// Every benchmark modelled.
pub fn all_benchmarks() -> Vec<&'static str> {
    let mut names: Vec<&str> = FIG6_BENCHMARKS.into_iter().chain(HETERO_BENCHMARKS).collect();
    names.sort_unstable();
    names.dedup();
    names
}

/// Looks up a benchmark profile by its figure label.
pub fn benchmark(name: &str) -> Option<WorkloadSpec> {
    let spec = match name {
        // SPEC CPU 2006 ------------------------------------------------------
        // astar: path-finding over pointer-linked graph regions; medium
        // footprint, poor locality.
        "astar" => WorkloadSpec {
            name: "astar",
            regions: vec![
                region("graph-core", 64 * MB, Pattern::PointerChase, 0.05, 3.5),
                region("graph-rest", 96 * MB, Pattern::PointerChase, 0.05, 1.5),
                region(
                    "open-list",
                    24 * MB,
                    Pattern::HotCold { hot_fraction: 0.2, hot_probability: 0.8 },
                    0.45,
                    3.0,
                )
                .with_init(0.2),
                region("way-map", 48 * MB, Pattern::RandomUniform, 0.10, 2.0).with_init(0.3),
            ],
            mean_gap: 4,
            mlp: 2.0,
        },
        // bzip2: block-sorting compression; hot working arrays with decent
        // locality plus a medium block buffer.
        "bzip2" => WorkloadSpec {
            name: "bzip2",
            regions: vec![
                region(
                    "block",
                    96 * MB,
                    Pattern::HotCold { hot_fraction: 0.3, hot_probability: 0.85 },
                    0.35,
                    4.0,
                ),
                region("sort-arrays", 96 * MB, Pattern::RandomUniform, 0.40, 3.0),
                region("output", 16 * MB, Pattern::Sequential { stride: 64 }, 0.9, 1.0),
            ],
            mean_gap: 5,
            mlp: 3.0,
        },
        // GemsFDTD: finite-difference time domain over 3D grids; the paper
        // singles it out for allocating 195 VBs across timesteps.
        "GemsFDTD" => WorkloadSpec {
            name: "GemsFDTD",
            regions: (0..195)
                .map(|i| {
                    region(
                        "grid",
                        4 * MB,
                        Pattern::Strided { stride: 4096 + 64 * ((i % 7) as u64) },
                        0.30,
                        if i % 13 == 0 { 3.0 } else { 1.0 },
                    )
                    // Grids are allocated fresh each timestep (§4.3): only a
                    // quarter of each is written before the traced region.
                    .with_init(0.25)
                })
                .collect(),
            mean_gap: 3,
            mlp: 4.0,
        },
        // mcf: single-depot vehicle scheduling; pointer chasing over a huge
        // network — the extreme TLB-miss outlier of Figure 6.
        "mcf" => WorkloadSpec {
            name: "mcf",
            regions: {
                // The network's hot nodes are one line per page across tens
                // of thousands of pages: LLC-resident, TLB-hopeless.
                let mut r = banked(
                    "network",
                    768 * MB,
                    8,
                    Pattern::SparseHot { hot_pages: 3072, hot_probability: 0.9 },
                    0.12,
                    8.0,
                    0.55,
                )
                .into_iter()
                .map(|x| x.with_init(0.15))
                .collect::<Vec<_>>();
                r.extend(
                    banked("arcs", 192 * MB, 4, Pattern::RandomUniform, 0.25, 1.5, 0.6)
                        .into_iter()
                        .map(|x| x.with_init(0.5)),
                );
                r
            },
            mean_gap: 2,
            mlp: 1.3,
        },
        // milc: lattice QCD; large strided sweeps over field arrays.
        "milc" => WorkloadSpec {
            name: "milc",
            regions: vec![
                region("lattice-a0", 64 * MB, Pattern::Strided { stride: 6 * 1024 }, 0.35, 2.0),
                region("lattice-a1", 64 * MB, Pattern::Strided { stride: 6 * 1024 }, 0.35, 1.3),
                region("lattice-a2", 64 * MB, Pattern::Strided { stride: 6 * 1024 }, 0.35, 0.7),
                region("lattice-b0", 64 * MB, Pattern::Strided { stride: 10 * 1024 }, 0.35, 2.0),
                region("lattice-b1", 64 * MB, Pattern::Strided { stride: 10 * 1024 }, 0.35, 1.3),
                region("lattice-b2", 64 * MB, Pattern::Strided { stride: 10 * 1024 }, 0.35, 0.7),
                region("gauge", 64 * MB, Pattern::Sequential { stride: 64 }, 0.2, 1.0),
            ],
            mean_gap: 3,
            mlp: 4.0,
        },
        // namd: molecular dynamics; small hot working set, cache friendly.
        "namd" => WorkloadSpec {
            name: "namd",
            regions: vec![
                region(
                    "atoms",
                    24 * MB,
                    Pattern::HotCold { hot_fraction: 0.1, hot_probability: 0.95 },
                    0.30,
                    5.0,
                ),
                region("pairlists", 16 * MB, Pattern::Sequential { stride: 64 }, 0.10, 2.0),
            ],
            mean_gap: 7,
            mlp: 4.0,
        },
        // sjeng: chess search; small tables, mostly cache resident.
        "sjeng" => WorkloadSpec {
            name: "sjeng",
            regions: vec![
                region(
                    "hash-table",
                    40 * MB,
                    Pattern::HotCold { hot_fraction: 0.05, hot_probability: 0.9 },
                    0.40,
                    4.0,
                )
                .with_init(0.1),
                region(
                    "board-stack",
                    2 * MB,
                    Pattern::HotCold { hot_fraction: 0.5, hot_probability: 0.95 },
                    0.50,
                    3.0,
                ),
            ],
            mean_gap: 8,
            mlp: 2.5,
        },
        // SPEC CPU 2017 ------------------------------------------------------
        // bwaves-17: blast-wave CFD; big streaming arrays.
        "bwaves-17" => WorkloadSpec {
            name: "bwaves-17",
            regions: vec![
                region("field-a0", 64 * MB, Pattern::Sequential { stride: 64 }, 0.4, 1.0),
                region("field-a1", 64 * MB, Pattern::Sequential { stride: 64 }, 0.4, 1.0),
                region("field-a2", 64 * MB, Pattern::Sequential { stride: 64 }, 0.4, 1.0),
                region("field-a3", 64 * MB, Pattern::Sequential { stride: 64 }, 0.4, 1.0),
                region("field-b0", 64 * MB, Pattern::Strided { stride: 8 * 1024 }, 0.3, 1.2),
                region("field-b1", 64 * MB, Pattern::Strided { stride: 8 * 1024 }, 0.3, 0.8),
                region("field-b2", 64 * MB, Pattern::Strided { stride: 8 * 1024 }, 0.3, 0.6),
                region("field-b3", 64 * MB, Pattern::Strided { stride: 8 * 1024 }, 0.3, 0.4),
                region(
                    "coeffs",
                    32 * MB,
                    Pattern::HotCold { hot_fraction: 0.2, hot_probability: 0.8 },
                    0.1,
                    1.0,
                ),
            ],
            mean_gap: 3,
            mlp: 6.0,
        },
        // deepsjeng-17: deeper chess search with a large transposition table.
        "deepsjeng-17" => WorkloadSpec {
            name: "deepsjeng-17",
            regions: vec![
                region("tt0", 80 * MB, Pattern::RandomUniform, 0.35, 2.4).with_init(0.15),
                region("tt1", 80 * MB, Pattern::RandomUniform, 0.35, 1.6).with_init(0.15),
                region("tt2", 80 * MB, Pattern::RandomUniform, 0.35, 1.2).with_init(0.15),
                region("tt3", 80 * MB, Pattern::RandomUniform, 0.35, 0.8).with_init(0.15),
                region(
                    "stacks",
                    4 * MB,
                    Pattern::HotCold { hot_fraction: 0.5, hot_probability: 0.95 },
                    0.50,
                    2.0,
                ),
            ],
            mean_gap: 5,
            mlp: 2.0,
        },
        // lbm-17: lattice-Boltzmann; pure streaming with heavy writes.
        "lbm-17" => WorkloadSpec {
            name: "lbm-17",
            regions: vec![
                region("grid-src0", 110 * MB, Pattern::Sequential { stride: 64 }, 0.05, 2.0),
                region("grid-src1", 110 * MB, Pattern::Sequential { stride: 64 }, 0.05, 2.0),
                region("grid-dst0", 110 * MB, Pattern::Sequential { stride: 64 }, 0.95, 2.0),
                region("grid-dst1", 110 * MB, Pattern::Sequential { stride: 64 }, 0.95, 2.0),
            ],
            mean_gap: 2,
            mlp: 8.0,
        },
        // omnetpp-17: discrete event simulation; pointer-heavy event heap.
        "omnetpp-17" => WorkloadSpec {
            name: "omnetpp-17",
            regions: vec![
                region("event-heap-hot", 32 * MB, Pattern::PointerChase, 0.30, 3.5).with_init(0.4),
                region("event-heap-cold", 96 * MB, Pattern::PointerChase, 0.30, 1.5).with_init(0.4),
                region("modules", 64 * MB, Pattern::RandomUniform, 0.20, 3.0),
                region(
                    "queues",
                    16 * MB,
                    Pattern::HotCold { hot_fraction: 0.3, hot_probability: 0.85 },
                    0.50,
                    2.0,
                ),
            ],
            mean_gap: 4,
            mlp: 1.8,
        },
        // xalancbmk-17: XSLT processing; DOM pointer chasing.
        "xalancbmk-17" => WorkloadSpec {
            name: "xalancbmk-17",
            regions: vec![
                region("dom-hot", 32 * MB, Pattern::PointerChase, 0.15, 3.5),
                region("dom-cold", 160 * MB, Pattern::PointerChase, 0.15, 1.5),
                region("strings", 48 * MB, Pattern::RandomUniform, 0.25, 2.0),
                region(
                    "stylesheet",
                    8 * MB,
                    Pattern::HotCold { hot_fraction: 0.2, hot_probability: 0.9 },
                    0.05,
                    2.0,
                ),
            ],
            mean_gap: 4,
            mlp: 2.0,
        },
        // SPEC CPU 2006 (heterogeneous-memory set additions) -----------------
        // hmmer: profile HMM search; small hot matrices, compute bound.
        "hmmer" => WorkloadSpec {
            name: "hmmer",
            regions: vec![
                region(
                    "dp-matrix",
                    12 * MB,
                    Pattern::HotCold { hot_fraction: 0.25, hot_probability: 0.95 },
                    0.55,
                    5.0,
                ),
                region("sequences", 24 * MB, Pattern::Sequential { stride: 64 }, 0.02, 2.0),
            ],
            mean_gap: 8,
            mlp: 3.0,
        },
        // soplex: LP simplex; sparse matrix with mixed stride/random rows.
        "soplex" => WorkloadSpec {
            name: "soplex",
            regions: vec![
                region("matrix-hot", 48 * MB, Pattern::Strided { stride: 12 * 1024 }, 0.20, 2.8),
                region("matrix-cold", 112 * MB, Pattern::Strided { stride: 12 * 1024 }, 0.20, 1.2),
                region("row-index", 64 * MB, Pattern::RandomUniform, 0.15, 3.0),
                region(
                    "basis",
                    16 * MB,
                    Pattern::HotCold { hot_fraction: 0.3, hot_probability: 0.9 },
                    0.60,
                    2.0,
                ),
            ],
            mean_gap: 4,
            mlp: 2.5,
        },
        // sphinx3: speech recognition; read-mostly acoustic models with a
        // hot active list.
        "sphinx3" => WorkloadSpec {
            name: "sphinx3",
            regions: vec![
                region(
                    "acoustic-hot",
                    24 * MB,
                    Pattern::HotCold { hot_fraction: 0.6, hot_probability: 0.9 },
                    0.02,
                    3.5,
                ),
                region("acoustic-cold", 360 * MB, Pattern::RandomUniform, 0.02, 1.5),
                region(
                    "active-list",
                    8 * MB,
                    Pattern::HotCold { hot_fraction: 0.4, hot_probability: 0.9 },
                    0.55,
                    3.0,
                ),
            ],
            mean_gap: 5,
            mlp: 3.0,
        },
        // TailBench -----------------------------------------------------------
        // img-dnn: handwriting recognition; dense layer weights streamed,
        // activations hot.
        "img-dnn" => WorkloadSpec {
            name: "img-dnn",
            regions: vec![
                region("weights0", 64 * MB, Pattern::Sequential { stride: 64 }, 0.02, 2.2),
                region("weights1", 64 * MB, Pattern::Sequential { stride: 64 }, 0.02, 1.6),
                region("weights2", 64 * MB, Pattern::Sequential { stride: 64 }, 0.02, 1.2),
                region(
                    "activations",
                    16 * MB,
                    Pattern::HotCold { hot_fraction: 0.5, hot_probability: 0.9 },
                    0.60,
                    3.0,
                ),
                region("requests", 32 * MB, Pattern::RandomUniform, 0.30, 1.0).with_init(0.2),
            ],
            mean_gap: 3,
            mlp: 5.0,
        },
        // moses: statistical machine translation; phrase-table pointer
        // chasing over a large model.
        "moses" => WorkloadSpec {
            name: "moses",
            regions: vec![
                region("phrase-hot", 64 * MB, Pattern::PointerChase, 0.05, 4.0).with_init(0.9),
                region("phrase-cold", 192 * MB, Pattern::PointerChase, 0.05, 2.0).with_init(0.9),
                region("lm-hot", 48 * MB, Pattern::RandomUniform, 0.05, 2.0),
                region("lm-cold", 80 * MB, Pattern::RandomUniform, 0.05, 1.0),
                region(
                    "hypotheses",
                    16 * MB,
                    Pattern::HotCold { hot_fraction: 0.3, hot_probability: 0.85 },
                    0.60,
                    2.0,
                )
                .with_init(0.1),
            ],
            mean_gap: 4,
            mlp: 1.8,
        },
        // Graph 500 ------------------------------------------------------------
        // BFS over a scale-free graph: random neighbour lookups across a
        // huge edge list; very TLB hostile.
        "Graph 500" => WorkloadSpec {
            name: "Graph 500",
            regions: vec![
                region("edges-core", 96 * MB, Pattern::RandomUniform, 0.02, 3.6).with_init(0.9),
                region("edges-rest", 416 * MB, Pattern::RandomUniform, 0.02, 2.4).with_init(0.9),
                region(
                    "vertices",
                    96 * MB,
                    Pattern::HotCold { hot_fraction: 0.1, hot_probability: 0.6 },
                    0.40,
                    3.0,
                )
                .with_init(0.3),
                region("frontier", 16 * MB, Pattern::Sequential { stride: 64 }, 0.70, 2.0)
                    .with_init(0.1),
            ],
            mean_gap: 2,
            mlp: 3.5,
        },
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_benchmark_resolves() {
        for name in all_benchmarks() {
            let spec = benchmark(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(spec.name, name);
            assert!(spec.footprint() > 0);
            assert!(spec.mlp >= 1.0);
        }
    }

    #[test]
    fn gemsfdtd_allocates_195_vbs() {
        // §4.3: GemsFDTD allocates 195 VBs; everything else fewer than 48.
        assert_eq!(benchmark("GemsFDTD").unwrap().region_count(), 195);
        for name in all_benchmarks() {
            if name != "GemsFDTD" {
                assert!(benchmark(name).unwrap().region_count() < 48, "{name}");
            }
        }
    }

    #[test]
    fn mcf_is_the_tlb_pressure_outlier() {
        let mcf = benchmark("mcf").unwrap();
        assert!(mcf.footprint() > 512 * MB);
        assert!(mcf.regions[0].pattern.is_dependent());
        assert!(mcf.mlp < 2.0);
    }

    #[test]
    fn small_benchmarks_fit_more_comfortably() {
        for small in ["namd", "sjeng", "hmmer"] {
            assert!(
                benchmark(small).unwrap().footprint() < 64 * MB,
                "{small} should be cache-friendlier"
            );
        }
    }

    #[test]
    fn footprints_fit_simulated_memory() {
        for name in all_benchmarks() {
            assert!(
                benchmark(name).unwrap().footprint() < 2 << 30,
                "{name} must fit a 4 GiB machine with room to spare"
            );
        }
    }

    #[test]
    fn unknown_names_return_none() {
        assert!(benchmark("quake").is_none());
    }
}
