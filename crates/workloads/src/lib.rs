//! # vbi-workloads — synthetic workload traces for the VBI reproduction
//!
//! Seeded, deterministic stand-ins for the SPEC CPU 2006/2017, TailBench,
//! and Graph 500 traces used by the paper's evaluation (§7.1). Each
//! benchmark is described by a [`trace::WorkloadSpec`] — a set of data
//! structures (regions) with footprints, access patterns, write fractions,
//! and a memory-level-parallelism factor — and yields an iterator of
//! [`trace::Access`] records that the `vbi-sim` engine replays against any
//! system configuration.
//!
//! ```
//! use vbi_workloads::spec::benchmark;
//!
//! let graph500 = benchmark("Graph 500").expect("known");
//! let first_thousand: Vec<_> = graph500.trace(42).take(1000).collect();
//! assert!(first_thousand.iter().any(|a| a.is_write));
//! ```

pub mod bundles;
pub mod patterns;
pub mod spec;
pub mod trace;

pub use patterns::Pattern;
pub use spec::{all_benchmarks, benchmark, FIG6_BENCHMARKS, FIG7_BENCHMARKS, HETERO_BENCHMARKS};
pub use trace::{Access, RegionSpec, TraceGenerator, WorkloadSpec};
